"""Batch-vs-looped parity: the core guarantee of the vectorized runner.

The property test drives both executors of the same scenario (same
seeds, same graph) and requires identical trajectories replica for
replica — across deterministic stateless schemes (fully vectorized
path), stateful rotor-routers, and randomized baselines (per-replica
fallback path).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidLoadVector
from repro.scenarios import (
    AlgorithmSpec,
    BatchRunner,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)

PARITY_ALGORITHMS = (
    "send_floor",
    "send_rounded",
    "rotor_router",
    "rotor_router_star",
    "arbitrary_rounding_fixed",
    "arbitrary_rounding_random",
    "randomized_extra_tokens",
    "randomized_edge_rounding",
)


def assert_parity(scenario: Scenario, graph=None) -> None:
    looped = scenario.run(executor="loop", graph=graph)
    batched = scenario.run(executor="batch", graph=graph)
    assert looped.executor == "loop" and batched.executor == "batch"
    for left, right in zip(looped.results, batched.results):
        np.testing.assert_array_equal(left.initial_loads, right.initial_loads)
        np.testing.assert_array_equal(left.final_loads, right.final_loads)
        assert left.discrepancy_history == right.discrepancy_history
        assert left.rounds_executed == right.rounds_executed
        assert left.stopped_early == right.stopped_early


@settings(max_examples=20, deadline=None)
@given(
    algorithm=st.sampled_from(PARITY_ALGORITHMS),
    n=st.integers(min_value=8, max_value=24),
    degree=st.sampled_from([2, 4]),
    tokens_per_node=st.integers(min_value=1, max_value=50),
    replicas=st.integers(min_value=1, max_value=5),
    rounds=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_batch_matches_loop(
    algorithm, n, degree, tokens_per_node, replicas, rounds, seed
):
    if n * degree % 2:
        n += 1
    scenario = Scenario(
        graph=GraphSpec(
            "random_regular", {"n": n, "degree": degree, "seed": 1}
        ),
        algorithm=AlgorithmSpec(algorithm, seed=seed),
        loads=LoadSpec(
            "uniform_random",
            {"total_tokens": tokens_per_node * n, "seed": seed + 1},
        ),
        stop=StopRule.fixed(rounds),
        replicas=replicas,
    )
    assert_parity(scenario)


@pytest.mark.parametrize("algorithm", ["rotor_router", "send_rounded"])
def test_parity_under_target_stop_rule(algorithm):
    scenario = Scenario(
        graph=GraphSpec("cycle", {"n": 17}),
        algorithm=AlgorithmSpec(algorithm),
        loads=LoadSpec("point_mass", {"tokens": 850}),
        stop=StopRule.discrepancy(target=10, max_rounds=600, check_every=2),
        replicas=3,
    )
    assert_parity(scenario)


def test_parity_under_converged_stop_rule():
    scenario = Scenario(
        graph=GraphSpec("complete", {"n": 10}),
        algorithm=AlgorithmSpec("send_floor"),
        loads=LoadSpec("linear_gradient", {"step": 3}),
        stop=StopRule.converged(max_rounds=200, window=6),
        replicas=2,
    )
    assert_parity(scenario)


def test_parity_with_distinct_replica_workloads():
    scenario = Scenario(
        graph=GraphSpec("random_regular", {"n": 16, "degree": 4, "seed": 2}),
        algorithm=AlgorithmSpec("randomized_edge_rounding", seed=9),
        loads=LoadSpec("skewed", {"total_tokens": 800, "seed": 11}),
        stop=StopRule.fixed(25),
        replicas=4,
    )
    assert_parity(scenario)


class TestBatchRunnerDirect:
    def test_rejects_1d_loads(self, expander24):
        from repro.algorithms import SendFloor

        with pytest.raises(InvalidLoadVector, match="replicas"):
            BatchRunner(
                expander24, SendFloor(), np.ones(24, dtype=np.int64)
            )

    def test_rejects_balancer_count_mismatch(self, expander24):
        from repro.algorithms import RotorRouter

        with pytest.raises(ValueError, match="balancers"):
            BatchRunner(
                expander24,
                [RotorRouter(), RotorRouter(), RotorRouter()],
                np.ones((2, 24), dtype=np.int64),
            )

    def test_rejects_sharing_stateful_balancer(self, expander24):
        from repro.algorithms import RotorRouter

        with pytest.raises(ValueError, match="shared"):
            BatchRunner(
                expander24,
                RotorRouter(),
                np.ones((2, 24), dtype=np.int64),
            )

    def test_shared_stateless_balancer_runs_vectorized(self, expander24):
        from repro.algorithms import SendFloor

        initial = np.tile(
            np.arange(24, dtype=np.int64) * 4, (3, 1)
        )
        runner = BatchRunner(expander24, SendFloor(), initial)
        result = runner.run(10)
        assert len(result) == 3
        np.testing.assert_array_equal(
            result.final_loads.sum(axis=1), initial.sum(axis=1)
        )
        # Identical replicas stay identical under a deterministic rule.
        np.testing.assert_array_equal(
            result.final_loads[0], result.final_loads[2]
        )

    def test_histories_include_initial_discrepancy(self, expander24):
        from repro.algorithms import SendFloor

        initial = np.zeros((2, 24), dtype=np.int64)
        initial[:, 0] = 240
        runner = BatchRunner(expander24, SendFloor(), initial)
        result = runner.run(5)
        for history in result.histories:
            assert history[0] == 240
            assert len(history) == 6


class TestVectorizedLoadValidation:
    """BatchRunner validates the whole (replicas, n) stack in one pass."""

    def test_rejects_fractional_loads_naming_replica(self, expander24):
        from repro.algorithms import SendFloor

        initial = np.ones((3, 24))
        initial[1, 5] = 0.5
        with pytest.raises(InvalidLoadVector, match="replica 1"):
            BatchRunner(expander24, SendFloor(), initial)

    def test_rejects_negative_loads_naming_replica(self, expander24):
        from repro.algorithms import SendFloor

        initial = np.ones((3, 24), dtype=np.int64)
        initial[2, 0] = -1
        with pytest.raises(InvalidLoadVector, match="replica 2"):
            BatchRunner(expander24, SendFloor(), initial)

    def test_accepts_integral_floats(self, expander24):
        from repro.algorithms import SendFloor

        initial = np.full((2, 24), 3.0)
        runner = BatchRunner(expander24, SendFloor(), initial)
        assert runner.initial_loads.dtype == np.int64

    def test_rejects_empty_batch(self, expander24):
        from repro.algorithms import SendFloor

        with pytest.raises(InvalidLoadVector, match="non-empty"):
            BatchRunner(
                expander24,
                SendFloor(),
                np.empty((0, 24), dtype=np.int64),
            )


class TestBatchEngineSelection:
    def test_auto_prefers_structured(self, expander24):
        from repro.algorithms import SendFloor

        runner = BatchRunner(
            expander24, SendFloor(), np.ones((2, 24), dtype=np.int64)
        )
        assert runner.engine == "structured"

    def test_auto_falls_back_to_dense(self, expander24):
        from repro.algorithms.mimicking import ContinuousMimicking

        runner = BatchRunner(
            expander24,
            [ContinuousMimicking(), ContinuousMimicking()],
            np.ones((2, 24), dtype=np.int64),
        )
        assert runner.engine == "dense"

    def test_structured_requires_support(self, expander24):
        from repro.algorithms.mimicking import ContinuousMimicking

        with pytest.raises(ValueError, match="structured"):
            BatchRunner(
                expander24,
                [ContinuousMimicking(), ContinuousMimicking()],
                np.ones((2, 24), dtype=np.int64),
                engine="structured",
            )


class TestBatchProbes:
    @staticmethod
    def _floor():
        from repro.algorithms import SendFloor

        return SendFloor()

    def test_sends_probe_rejected(self, expander24):
        from repro.core.flows import FlowTracker

        with pytest.raises(ValueError, match="loads-only"):
            BatchRunner(
                expander24,
                [self._floor(), self._floor()],
                np.ones((2, 24), dtype=np.int64),
                probes=[(FlowTracker(),), (FlowTracker(),)],
            )

    def test_probe_set_count_must_match_replicas(self, expander24):
        from repro.core.monitors import LoadBoundsMonitor

        with pytest.raises(ValueError, match="probe sets"):
            BatchRunner(
                expander24,
                [self._floor(), self._floor()],
                np.ones((2, 24), dtype=np.int64),
                probes=[(LoadBoundsMonitor(),)],
            )

    def test_records_include_probe_summaries(self, expander24):
        from repro.core.monitors import LoadBoundsMonitor

        loads = np.zeros((2, 24), dtype=np.int64)
        loads[:, 0] = 240
        runner = BatchRunner(
            expander24,
            self._floor(),
            loads,
            probes=[(LoadBoundsMonitor(),), (LoadBoundsMonitor(),)],
        )
        batch = runner.run(10)
        assert len(batch.records) == 2
        for record in batch.records:
            assert record.summary["min_load"] == 0
            assert record.summary["max_load"] == 240
        assert batch.replica(0).record is batch.records[0]
