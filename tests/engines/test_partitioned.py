"""Partition-boundary behavior of the ``partitioned`` engine.

The cross-backend suite (``test_backend_parity.py``) auto-discovers
``partitioned`` from the registry and already proves bit-identity on
every family through every execution path.  This file pins the cases
where partition *boundaries* specifically matter: halo bookkeeping,
cut-edge churn, node join/leave at a partition border, uneven
partition counts (``k`` not dividing ``n``), ``run_until`` with frozen
replicas, and the real worker-process transport (the parity suite's
tiny graphs always take the inline path).
"""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.engines import ENGINES, create_engine
from repro.engines.partitioned import PartitionedEngine
from repro.graphs import families
from repro.graphs.mutable import MutableBalancingGraph
from repro.graphs.partition import PartitionBook, contiguous_bounds
from repro.scenarios.batch import BatchRunner
from repro.topology import TopologySpec

# ----------------------------------------------------------------------
# PartitionBook / halo unit behavior
# ----------------------------------------------------------------------


def test_contiguous_bounds_even_and_uneven():
    np.testing.assert_array_equal(
        contiguous_bounds(12, 3), [0, 4, 8, 12]
    )
    # 17 = 4 + 4 + 3 + 3 + 3: remainder spread over leading partitions.
    np.testing.assert_array_equal(
        contiguous_bounds(17, 5), [0, 4, 8, 11, 14, 17]
    )
    sizes = np.diff(contiguous_bounds(17, 5))
    assert sizes.sum() == 17
    assert sizes.max() - sizes.min() <= 1


def test_contiguous_bounds_rejects_bad_parts():
    with pytest.raises(ValueError):
        contiguous_bounds(10, 0)
    with pytest.raises(ValueError):
        contiguous_bounds(3, 4)


def test_partition_book_owner_and_cut_edges():
    graph = families.cycle(16)
    book = PartitionBook(graph, 2)
    np.testing.assert_array_equal(book.bounds, [0, 8, 16])
    np.testing.assert_array_equal(
        book.owner([0, 7, 8, 15]), [0, 0, 1, 1]
    )
    # A 16-cycle split in half has exactly the two wrap edges cut.
    assert book.cut_edges() == 2
    stats = book.describe()
    assert stats["parts"] == 2
    assert stats["halo_nodes"] == 4  # nodes 8,15 for p0; 0,7 for p1
    assert stats["min_part"] == stats["max_part"] == 8


def test_partition_book_clamps_parts_to_nodes():
    graph = families.cycle(3, num_self_loops=1)
    book = PartitionBook(graph, 8)
    assert book.parts == 3


def _gathered(graph, halo, values):
    """What the halo's remapped gather reads for each owned port."""
    ext = np.concatenate(
        [values[halo.lo:halo.hi], values[halo.halo_ids]]
    )
    return ext[halo.adj_local]


def test_repair_rows_appends_ghosts_never_reorders():
    graph = MutableBalancingGraph.from_graph(families.cycle(12))
    book = PartitionBook(graph, 2)
    halo = book.halos[0]
    before = halo.halo_ids.copy()
    # Rewire across the cut: 5-6 becomes 5-8, making node 8 a fresh
    # ghost of partition 0 while ghost 6 goes stale (but stays).
    graph.drop_edge(5, 6)
    graph.drop_edge(8, 9)
    graph.add_edge(5, 8)
    dirty = graph.consume_dirty()
    for part, rows in book.rows_by_partition(dirty):
        book.halos[part].repair_rows(rows, graph.adjacency)
    np.testing.assert_array_equal(
        halo.halo_ids[: before.size], before
    )
    assert 8 in halo.halo_ids.tolist()
    # The remapped gather must agree with a direct global gather.
    values = np.arange(graph.num_nodes) * 10
    for h in book.halos:
        np.testing.assert_array_equal(
            _gathered(graph, h, values),
            values[graph.adjacency[h.lo:h.hi]],
        )


# ----------------------------------------------------------------------
# Engine construction / registry
# ----------------------------------------------------------------------


def test_partitioned_is_registered_for_parity_discovery():
    # test_backend_parity.ALL_ENGINES is sorted(ENGINES): membership
    # here guarantees the differential suite exercises this backend.
    assert "partitioned" in ENGINES
    from tests.engines import test_backend_parity

    assert "partitioned" in test_backend_parity.ALL_ENGINES


def test_engine_param_shorthand_and_validation():
    engine = create_engine('partitioned:{"workers": 3, "inline": true}')
    assert isinstance(engine, PartitionedEngine)
    assert engine.workers == 3
    assert engine.inline is True
    with pytest.raises(ValueError):
        PartitionedEngine(workers=0)


def test_partition_stats_diagnostics():
    graph = families.cycle(20)
    engine = PartitionedEngine(workers=4, inline=True)
    stats = engine.partition_stats(graph)
    assert stats["parts"] == 4
    assert stats["cut_edges"] == 4


# ----------------------------------------------------------------------
# Boundary parity: k values, cut-edge churn, border join/leave
# ----------------------------------------------------------------------


def _final(graph, engine, *, algorithm="rotor_router", rounds=40,
           topology=None, seed=31):
    rng = np.random.default_rng(seed)
    loads = rng.integers(0, 300, graph.num_nodes).astype(np.int64)
    return Simulator(
        graph,
        make(algorithm),
        loads,
        topology=topology,
        engine=engine,
    ).run(rounds).final_loads


@pytest.mark.parametrize("workers", [1, 2, 5])
def test_parity_uneven_partition_counts(workers):
    # n = 17 is prime: k in {2, 5} never divides it, so partition
    # sizes differ and both wrap edges of the cycle cross a boundary.
    graph = families.cycle(17, num_self_loops=1)
    reference = _final(graph, "structured")
    candidate = _final(
        graph, f'partitioned:{{"workers": {workers}}}'
    )
    np.testing.assert_array_equal(reference, candidate)


def test_parity_cut_edge_churn():
    # k=2 on a 16-cycle puts the boundary between nodes 7|8: edge
    # (7, 8) is a cut edge.  Drop it, then restore it — both repairs
    # land in both partitions' dirty closures and must fix both halos.
    graph = families.cycle(16)
    spec = TopologySpec(
        "scripted",
        {
            "events": [
                ["drop", 4, 7, 8],
                ["drop", 4, 15, 0],
                ["add", 11, 7, 8],
                ["add", 14, 15, 0],
            ]
        },
    )
    for algorithm in ("rotor_router", "send_floor"):
        reference = _final(
            graph, "structured", algorithm=algorithm, topology=spec
        )
        candidate = _final(
            graph,
            'partitioned:{"workers": 2}',
            algorithm=algorithm,
            topology=spec,
        )
        np.testing.assert_array_equal(reference, candidate)


def test_parity_border_node_join_leave():
    # Node 8 sits right at the k=2 border of a 16-cycle; its leave
    # re-routes its load across the cut and its rejoin re-creates cut
    # edges on both sides.
    graph = families.cycle(16)
    spec = TopologySpec(
        "scripted",
        {
            "events": [
                ["leave", 3, 8],
                ["leave", 6, 0],
                ["join", 9, 8, [7, 9]],
                ["join", 12, 0, [15, 1]],
            ]
        },
    )
    reference = _final(graph, "structured", topology=spec)
    candidate = _final(
        graph, 'partitioned:{"workers": 2}', topology=spec
    )
    np.testing.assert_array_equal(reference, candidate)


def test_parity_random_join_leave_schedule():
    graph = families.cycle(24, num_self_loops=1)
    spec = TopologySpec(
        "node_join_leave",
        {"rate": 0.08, "rejoin_after": 3, "seed": 5},
    )
    reference = _final(graph, "structured", topology=spec, rounds=30)
    candidate = _final(
        graph,
        'partitioned:{"workers": 3}',
        topology=spec,
        rounds=30,
    )
    np.testing.assert_array_equal(reference, candidate)


# ----------------------------------------------------------------------
# run_until with frozen replicas
# ----------------------------------------------------------------------


def test_run_until_frozen_replicas_parity():
    # Staggered thresholds freeze replicas at different rounds; the
    # engine then sees shrinking fancy-indexed batch copies.
    graph = families.cycle(18)
    replicas = 3
    rng = np.random.default_rng(11)
    initial = rng.integers(0, 200, (replicas, 18)).astype(np.int64)
    thresholds = [2, 6, 40]

    def run(engine):
        return BatchRunner(
            graph,
            [make("rotor_router") for _ in range(replicas)],
            initial,
            engine=engine,
        ).run_until(
            [
                (lambda t: lambda v: int(v.max() - v.min()) <= t)(t)
                for t in thresholds
            ],
            max_rounds=120,
            check_every=2,
        )

    reference = run("structured")
    candidate = run('partitioned:{"workers": 2}')
    np.testing.assert_array_equal(
        reference.final_loads, candidate.final_loads
    )
    np.testing.assert_array_equal(
        reference.rounds_executed, candidate.rounds_executed
    )
    np.testing.assert_array_equal(
        reference.stopped_early, candidate.stopped_early
    )
    assert reference.histories == candidate.histories


# ----------------------------------------------------------------------
# Worker-process transport (the parity suite's graphs stay inline)
# ----------------------------------------------------------------------


def test_parity_process_transport():
    # inline=false forces the shared-memory / ProcessPoolExecutor path
    # even on a small graph; with churn, repairs must ship to workers.
    graph = families.cycle(40, num_self_loops=1)
    spec = TopologySpec(
        "edge_churn", {"rate": 0.1, "downtime": 3, "seed": 7}
    )
    reference = _final(graph, "structured", topology=spec, rounds=25)
    candidate = _final(
        graph,
        'partitioned:{"workers": 2, "inline": false}',
        topology=spec,
        rounds=25,
    )
    np.testing.assert_array_equal(reference, candidate)
