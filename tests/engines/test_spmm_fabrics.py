"""Pin the SpMM gather operator on padded-irregular fabrics.

Datacenter fabrics (``fat_tree``, ``leaf_spine``) have irregular true
degrees but a *uniform* padded port capacity: every adjacency row has
``graph.degree`` columns, with padding ports as self-entries whose
reverse port is the port itself.  ``_GatherOperator`` leans on exactly
that invariant — its scalar-degree ``indptr`` (``arange`` with step
``degree``) and the ``reshape(-1, degree)`` in churn repair assume
row-constant width.  These tests pin the operator against the direct
dense gather on real fabrics, through churn repair, so any future
ragged-adjacency representation fails loudly here (and in the
operator's own width guard) instead of silently misrouting tokens.
"""

import numpy as np
import pytest

from repro.engines.spmm import SpmmEngine, _GatherOperator
from repro.graphs.datacenter import fat_tree, leaf_spine
from repro.graphs.mutable import MutableBalancingGraph

FABRICS = {
    "fat_tree": lambda: fat_tree(4),
    "leaf_spine": lambda: leaf_spine(4, 3, 4),
}


def _dense_gather(graph, sends):
    return sends[graph.adjacency, graph.reverse_port].sum(axis=1)


def _random_sends(graph, rng, batch=None):
    shape = (graph.num_nodes, graph.total_degree)
    if batch is not None:
        shape = (batch, *shape)
    return rng.integers(0, 50, shape).astype(np.int64)


@pytest.mark.parametrize("fabric", sorted(FABRICS))
def test_fabric_padding_invariant(fabric):
    graph = FABRICS[fabric]()
    # Irregular fabric: not every node uses its full port capacity...
    assert graph.true_degrees.min() < graph.degree
    # ...yet adjacency is padded to uniform width with self-entry
    # padding ports that reverse onto themselves.
    assert graph.adjacency.shape == (graph.num_nodes, graph.degree)
    pad = graph.adjacency == np.arange(graph.num_nodes)[:, None]
    assert pad.any()
    ports = np.broadcast_to(
        np.arange(graph.degree), graph.adjacency.shape
    )
    np.testing.assert_array_equal(
        graph.reverse_port[pad], ports[pad]
    )


@pytest.mark.parametrize("fabric", sorted(FABRICS))
def test_operator_matches_dense_gather(fabric):
    graph = FABRICS[fabric]()
    rng = np.random.default_rng(3)
    operator = _GatherOperator(graph)
    sends = _random_sends(graph, rng)
    np.testing.assert_array_equal(
        operator.matrix @ sends.ravel(), _dense_gather(graph, sends)
    )


@pytest.mark.parametrize("fabric", sorted(FABRICS))
def test_engine_matches_dense_gather_batched(fabric):
    graph = FABRICS[fabric]()
    rng = np.random.default_rng(17)
    engine = SpmmEngine()
    batched = _random_sends(graph, rng, batch=3)
    expected = np.stack(
        [_dense_gather(graph, sends) for sends in batched]
    )
    np.testing.assert_array_equal(
        engine.incoming(graph, batched), expected
    )


@pytest.mark.parametrize("fabric", sorted(FABRICS))
def test_churn_repair_on_fabric_rows(fabric):
    # Drop a real (non-padding) edge on the padded fabric, repair the
    # dirty rows, and require the repaired operator to equal a freshly
    # built one on the mutated graph — the reshape in repair() must
    # stay exact when the mutated rows gain more padding ports.
    graph = MutableBalancingGraph.from_graph(FABRICS[fabric]())
    engine = SpmmEngine()
    rng = np.random.default_rng(29)
    sends = _random_sends(graph, rng)
    np.testing.assert_array_equal(
        engine.incoming(graph, sends), _dense_gather(graph, sends)
    )
    u = int(np.argmax(graph.true_degrees))
    v = int(graph.adjacency[u, 0])
    graph.drop_edge(u, v)
    dirty = graph.consume_dirty()
    assert dirty.size
    engine.refresh_topology(graph, dirty)
    sends = _random_sends(graph, rng)
    np.testing.assert_array_equal(
        engine.incoming(graph, sends), _dense_gather(graph, sends)
    )
    np.testing.assert_array_equal(
        engine._ops[id(graph)].matrix.indices,
        _GatherOperator(graph).matrix.indices,
    )


def test_operator_rejects_unpadded_adjacency():
    class Ragged:
        num_nodes = 4
        degree = 3
        total_degree = 3
        adjacency = np.zeros((4, 2), dtype=np.int64)
        reverse_port = np.zeros((4, 2), dtype=np.int64)

    with pytest.raises(ValueError, match="degree-padded"):
        _GatherOperator(Ragged())
