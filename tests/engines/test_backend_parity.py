"""Cross-backend bit-identity: every registered engine == dense.

The acceptance property of the engine registry: for every backend in
``ENGINES`` (not just the built-in four — third-party registrations are
picked up automatically), the load trajectory is bit-identical to the
dense reference on every standard graph family, through every execution
path (looped, batched, ``run_until``), and with probes, dynamics,
faults, and topology churn attached.  Integer token counts make
bitwise equality the right assertion — no tolerance anywhere.
"""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.probes import ProbeSpec
from repro.dynamics import DynamicsSpec
from repro.engines import DENSE, ENGINES, create_engine
from repro.faults import FaultSpec
from repro.graphs import families
from repro.graphs.datacenter import fat_tree, leaf_spine
from repro.scenarios.batch import BatchRunner
from repro.topology import TopologySpec

FAMILIES = {
    "cycle": lambda: families.cycle(15, num_self_loops=2),
    "torus": lambda: families.torus(4, 2),
    "hypercube": lambda: families.hypercube(4),
    "random_regular": lambda: families.random_regular(20, 4, seed=9),
    "fat_tree": lambda: fat_tree(4),
    "leaf_spine": lambda: leaf_spine(4, 3, 4),
}

ALL_ENGINES = sorted(ENGINES)
CHURN = DynamicsSpec("random_churn", {"rate": 9, "seed": 12})


def _initial(graph, replicas=None, seed=31):
    rng = np.random.default_rng(seed)
    shape = (
        graph.num_nodes
        if replicas is None
        else (replicas, graph.num_nodes)
    )
    return rng.integers(0, 300, shape).astype(np.int64)


def _algorithms(engine):
    """Structured-protocol backends only run structured-capable schemes."""
    if create_engine(engine).protocol == DENSE:
        return ["rotor_router", "send_floor", "arbitrary_rounding_fixed"]
    return ["rotor_router", "send_floor"]


@pytest.mark.parametrize("engine", ALL_ENGINES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_looped_parity_with_probes_and_dynamics(family, engine):
    """Looped path: probes + dynamics, every family x every backend."""
    graph = FAMILIES[family]()
    loads = _initial(graph)
    for algorithm in _algorithms(engine):
        reference = Simulator(
            graph,
            make(algorithm),
            loads,
            probes=(ProbeSpec("discrepancy"),),
            dynamics=CHURN.build(),
            engine="dense",
        ).run(50)
        candidate = Simulator(
            graph,
            make(algorithm),
            loads,
            probes=(ProbeSpec("discrepancy"),),
            dynamics=CHURN.build(),
            engine=engine,
        ).run(50)
        np.testing.assert_array_equal(
            reference.final_loads, candidate.final_loads
        )
        assert (
            reference.discrepancy_history
            == candidate.discrepancy_history
        )
        assert reference.record.summary == candidate.record.summary


@pytest.mark.parametrize("engine", ALL_ENGINES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_looped_parity_under_faults(family, engine):
    graph = FAMILIES[family]()
    loads = _initial(graph, seed=17)
    spec = FaultSpec("link_failures", {"rate": 0.3, "seed": 3})
    for algorithm in _algorithms(engine):
        reference = Simulator(
            graph,
            make(algorithm),
            loads,
            faults=spec.build(),
            engine="dense",
        ).run(40)
        candidate = Simulator(
            graph,
            make(algorithm),
            loads,
            faults=spec.build(),
            engine=engine,
        ).run(40)
        np.testing.assert_array_equal(
            reference.final_loads, candidate.final_loads
        )
        assert (
            reference.discrepancy_history
            == candidate.discrepancy_history
        )


@pytest.mark.parametrize("engine", ALL_ENGINES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_looped_parity_under_topology_churn(family, engine):
    """Churn exercises each backend's refresh_topology repair path."""
    graph = FAMILIES[family]()
    loads = _initial(graph, seed=23)
    spec = TopologySpec(
        "edge_churn", {"rate": 0.12, "downtime": 4, "seed": 3}
    )
    for algorithm in _algorithms(engine):
        reference = Simulator(
            graph,
            make(algorithm),
            loads,
            topology=spec,
            engine="dense",
        ).run(40)
        candidate = Simulator(
            graph,
            make(algorithm),
            loads,
            topology=spec,
            engine=engine,
        ).run(40)
        np.testing.assert_array_equal(
            reference.final_loads, candidate.final_loads
        )
        assert (
            reference.discrepancy_history
            == candidate.discrepancy_history
        )


@pytest.mark.parametrize("engine", ALL_ENGINES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_batched_parity_with_dynamics(family, engine):
    """Batch path: stateful per-replica rotors + shared send_floor."""
    graph = FAMILIES[family]()
    replicas = 3
    initial = _initial(graph, replicas, seed=5)

    def run(balancers, backend):
        return BatchRunner(
            graph, balancers, initial, dynamics=CHURN, engine=backend
        ).run(40)

    for algorithm in ("rotor_router", "send_floor"):
        if algorithm == "rotor_router":
            # Stateful: one instance per replica.
            balancers = lambda: [make(algorithm) for _ in range(replicas)]
        else:
            balancers = lambda: make(algorithm)
        reference = run(balancers(), "dense")
        candidate = run(balancers(), engine)
        np.testing.assert_array_equal(
            reference.final_loads, candidate.final_loads
        )
        assert reference.histories == candidate.histories
        for replica in range(replicas):
            assert (
                reference.records[replica].summary
                == candidate.records[replica].summary
            )


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_batched_run_until_parity(engine):
    """Early stopping freezes replicas identically on every backend."""
    graph = families.torus(4, 2)
    replicas = 3
    initial = _initial(graph, replicas, seed=11)
    spec = DynamicsSpec("constant_rate", {"rate": 6, "seed": 2})

    def predicates():
        return [
            lambda loads: int(loads.max() - loads.min()) <= 14
            for _ in range(replicas)
        ]

    def run(backend):
        return BatchRunner(
            graph,
            [make("rotor_router") for _ in range(replicas)],
            initial,
            dynamics=spec,
            engine=backend,
        ).run_until(predicates(), max_rounds=150, check_every=2)

    reference = run("dense")
    candidate = run(engine)
    np.testing.assert_array_equal(
        reference.final_loads, candidate.final_loads
    )
    np.testing.assert_array_equal(
        reference.rounds_executed, candidate.rounds_executed
    )
    np.testing.assert_array_equal(
        reference.stopped_early, candidate.stopped_early
    )
    assert reference.histories == candidate.histories


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_looped_run_until_parity(engine):
    graph = families.hypercube(4)
    loads = _initial(graph, seed=29)

    def run(backend):
        return Simulator(
            graph, make("rotor_router"), loads, engine=backend
        ).run_until(
            lambda vec: int(vec.max() - vec.min()) <= 6,
            max_rounds=200,
            check_every=3,
        )

    reference = run("dense")
    candidate = run(engine)
    np.testing.assert_array_equal(
        reference.final_loads, candidate.final_loads
    )
    assert reference.rounds_executed == candidate.rounds_executed
    assert (
        reference.discrepancy_history == candidate.discrepancy_history
    )
