"""Engine-backend registry: names, validation, selection, serialization.

The registry contract: every built-in backend is registered under a
stable name, ``"auto"`` stays a selection policy (never a backend),
unknown names fail loudly everywhere an engine can be named, and the
protocol constraints (structured backends need structured-capable
balancers and observers) hold for third-party backends exactly as they
did for the two hard-coded engines.
"""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.monitors import LoadBoundsMonitor
from repro.core.probes import SENDS, Probe
from repro.engines import (
    DENSE,
    ENGINES,
    STRUCTURED,
    create_engine,
    engine_names,
    register_engine,
)
from repro.engines.builtin import StructuredEngine
from repro.graphs import families
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)
from repro.scenarios.batch import BatchRunner


def _graph():
    return families.cycle(12, num_self_loops=1)


def _loads(graph, seed=7):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 200, graph.num_nodes).astype(np.int64)


class DenseOnlyProbe(Probe):
    """A sends consumer without a structured hook (forces dense)."""

    needs = SENDS
    accepts_structured = False

    def observe(self, t, loads_before, sends, loads_after):
        pass


class TestRegistryContents:
    def test_builtin_backends_registered(self):
        assert {"dense", "structured", "spmm", "compiled"} <= set(ENGINES)

    def test_auto_is_a_policy_not_a_backend(self):
        assert "auto" not in ENGINES

    def test_create_engine_yields_fresh_instances(self):
        a = create_engine("spmm")
        b = create_engine("spmm")
        assert a is not b
        assert a.name == "spmm"

    def test_protocols_and_kernels(self):
        assert create_engine("dense").protocol == DENSE
        assert create_engine("dense").kernel == "numpy"
        assert create_engine("structured").protocol == STRUCTURED
        assert create_engine("spmm").protocol == DENSE
        assert create_engine("spmm").kernel == "csr"
        compiled = create_engine("compiled")
        assert compiled.protocol == STRUCTURED
        assert compiled.kernel in ("numba", "csr")

    def test_engine_names_sorted(self):
        assert list(engine_names()) == sorted(engine_names())


class TestUnknownEngine:
    def test_simulator_rejects_unknown_engine(self):
        graph = _graph()
        with pytest.raises(ValueError, match="unknown engine 'bogus'"):
            Simulator(
                graph, make("send_floor"), _loads(graph), engine="bogus"
            )

    def test_batch_runner_rejects_unknown_engine(self):
        graph = _graph()
        initial = np.tile(_loads(graph), (2, 1))
        with pytest.raises(ValueError, match="unknown engine"):
            BatchRunner(
                graph, make("send_floor"), initial, engine="bogus"
            )

    def test_scenario_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Scenario(
                graph=GraphSpec("cycle", {"n": 12}),
                algorithm=AlgorithmSpec("send_floor"),
                loads=LoadSpec(
                    "uniform_random", {"total_tokens": 500, "seed": 1}
                ),
                stop=StopRule.fixed(5),
                engine="bogus",
            )

    def test_error_lists_registered_names(self):
        graph = _graph()
        with pytest.raises(ValueError, match="compiled.*spmm"):
            Simulator(
                graph, make("send_floor"), _loads(graph), engine="nope"
            )


class TestProtocolConstraints:
    """Structured-protocol backends inherit the structured constraints."""

    @pytest.mark.parametrize("engine", ["structured", "compiled"])
    def test_dense_only_balancer_rejected(self, engine):
        graph = _graph()
        with pytest.raises(
            ValueError, match="does not implement structured sends"
        ):
            Simulator(
                graph,
                make("arbitrary_rounding_fixed"),
                _loads(graph),
                engine=engine,
            )

    @pytest.mark.parametrize("engine", ["structured", "compiled"])
    def test_legacy_monitors_rejected(self, engine):
        graph = _graph()
        with pytest.raises(ValueError, match="monitors consume dense"):
            Simulator(
                graph,
                make("rotor_router"),
                _loads(graph),
                monitors=[LoadBoundsMonitor()],
                engine=engine,
            )

    @pytest.mark.parametrize("engine", ["dense", "spmm"])
    def test_dense_protocol_backends_take_any_balancer(self, engine):
        graph = _graph()
        result = Simulator(
            graph,
            make("arbitrary_rounding_fixed"),
            _loads(graph),
            monitors=[LoadBoundsMonitor()],
            engine=engine,
        ).run(10)
        assert result.rounds_executed == 10

    def test_auto_ignores_optional_backends(self):
        """Auto picks dense/structured only — never spmm/compiled."""
        graph = _graph()
        loads = _loads(graph)
        assert (
            Simulator(graph, make("rotor_router"), loads).engine
            == "structured"
        )
        assert (
            Simulator(
                graph, make("arbitrary_rounding_fixed"), loads
            ).engine
            == "dense"
        )


class TestAttachMidRun:
    def test_auto_structured_degrades_to_dense(self):
        graph = _graph()
        sim = Simulator(graph, make("rotor_router"), _loads(graph))
        sim.run(5)
        assert sim.engine == "structured"
        sim.attach(DenseOnlyProbe())
        assert sim.engine == "dense"
        sim.run(5)

    def test_explicit_compiled_refuses_dense_probe(self):
        graph = _graph()
        sim = Simulator(
            graph, make("rotor_router"), _loads(graph), engine="compiled"
        )
        sim.run(5)
        with pytest.raises(ValueError, match="explicitly requested"):
            sim.attach(DenseOnlyProbe())


class TestScenarioSerialization:
    def _scenario(self, engine="auto"):
        return Scenario(
            graph=GraphSpec("cycle", {"n": 12}),
            algorithm=AlgorithmSpec("rotor_router"),
            loads=LoadSpec(
                "uniform_random", {"total_tokens": 500, "seed": 1}
            ),
            stop=StopRule.fixed(8),
            engine=engine,
        )

    def test_auto_engine_omitted_from_dict(self):
        """Cache-key stability: auto scenarios hash as before the field."""
        assert "engine" not in self._scenario().to_dict()

    def test_auto_hash_matches_pre_engine_scenarios(self):
        assert (
            self._scenario().content_hash()
            == self._scenario("auto").content_hash()
        )

    def test_explicit_engine_round_trips(self):
        scenario = self._scenario("spmm")
        data = scenario.to_dict()
        assert data["engine"] == "spmm"
        restored = Scenario.from_dict(data)
        assert restored.engine == "spmm"
        assert restored.content_hash() == scenario.content_hash()

    def test_engine_changes_content_hash(self):
        assert (
            self._scenario("spmm").content_hash()
            != self._scenario().content_hash()
        )

    @pytest.mark.parametrize("executor", ["loop", "batch"])
    def test_scenario_runs_named_engine(self, executor):
        scenario = self._scenario("compiled")
        reference = self._scenario("dense")
        got = scenario.run(executor=executor)
        want = reference.run(executor=executor)
        np.testing.assert_array_equal(
            got.results[0].final_loads, want.results[0].final_loads
        )


class TestThirdPartyBackend:
    def test_registered_backend_usable_by_name(self):
        @register_engine
        class EchoEngine(StructuredEngine):
            name = "echo_test"
            kernel = "numpy"

        try:
            graph = _graph()
            loads = _loads(graph)
            got = Simulator(
                graph, make("rotor_router"), loads, engine="echo_test"
            ).run(15)
            want = Simulator(
                graph, make("rotor_router"), loads, engine="dense"
            ).run(15)
            np.testing.assert_array_equal(
                got.final_loads, want.final_loads
            )
        finally:
            ENGINES.remove("echo_test")
        assert "echo_test" not in ENGINES
