"""Graceful degradation when numba is unavailable.

The compiled engine is opportunistic: with numba present it JIT-fuses
the rotor round, without it (or with ``REPRO_DISABLE_NUMBA`` set) it
falls back to a scipy-CSR kernel — same name, same results, no import
error anywhere.  ``engine="auto"`` never selects it, so a numba-less
install behaves exactly like the seed.
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.engines import create_engine
from repro.engines import compiled as compiled_module
from repro.graphs import families


def test_kernel_flavor_matches_numba_availability():
    backend = create_engine("compiled")
    try:
        import numba  # noqa: F401

        expected = "numba"
    except ImportError:
        expected = "csr"
    if os.environ.get("REPRO_DISABLE_NUMBA"):
        expected = "csr"
    assert compiled_module.KERNEL == expected
    assert backend.kernel == expected


def test_compiled_runs_on_whatever_kernel_is_active():
    """The engine works regardless of which flavor the import found."""
    graph = families.torus(4, 2)
    rng = np.random.default_rng(3)
    loads = rng.integers(0, 400, graph.num_nodes).astype(np.int64)
    reference = Simulator(
        graph, make("rotor_router"), loads, engine="dense"
    ).run(60)
    candidate = Simulator(
        graph, make("rotor_router"), loads, engine="compiled"
    ).run(60)
    np.testing.assert_array_equal(
        reference.final_loads, candidate.final_loads
    )


def test_auto_selection_never_requires_numba():
    graph = families.cycle(12, num_self_loops=1)
    loads = np.full(graph.num_nodes, 30, dtype=np.int64)
    sim = Simulator(graph, make("rotor_router"), loads)
    assert sim.engine == "structured"
    sim.run(10)


def test_disable_env_forces_csr_fallback():
    """Subprocess with REPRO_DISABLE_NUMBA=1: csr flavor, same results."""
    script = textwrap.dedent(
        """
        import numpy as np
        from repro.algorithms.registry import make
        from repro.core.engine import Simulator
        from repro.engines import compiled, create_engine
        from repro.graphs import families

        assert compiled.njit is None
        assert compiled.KERNEL == "csr"
        assert create_engine("compiled").kernel == "csr"

        graph = families.hypercube(4)
        rng = np.random.default_rng(9)
        loads = rng.integers(0, 300, graph.num_nodes).astype(np.int64)
        dense = Simulator(
            graph, make("rotor_router"), loads, engine="dense"
        ).run(50)
        fallback = Simulator(
            graph, make("rotor_router"), loads, engine="compiled"
        ).run(50)
        np.testing.assert_array_equal(
            dense.final_loads, fallback.final_loads
        )

        auto = Simulator(graph, make("rotor_router"), loads)
        assert auto.engine == "structured"
        auto.run(5)
        print("FALLBACK_OK")
        """
    )
    env = dict(os.environ, REPRO_DISABLE_NUMBA="1")
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = os.path.join(root, "src")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "FALLBACK_OK" in proc.stdout


@pytest.mark.skipif(
    compiled_module.njit is not None, reason="numba is installed"
)
def test_in_process_fallback_when_numba_absent():
    assert compiled_module.KERNEL == "csr"
    assert create_engine("compiled").kernel == "csr"
