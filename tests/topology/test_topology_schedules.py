"""Unit tests for topology-schedule semantics.

Differential parity lives in ``tests/differential/test_churn_parity.py``;
this file pins the *meaning* of each registered schedule — which edges
churn when, where a leaver's load goes, what a double swap preserves —
plus the structural validator, the event applicator, and determinism
of every stream.
"""

import numpy as np
import pytest

from repro.graphs import MutableBalancingGraph, families
from repro.graphs.errors import GraphValidationError
from repro.topology import (
    EdgeChurn,
    ExpanderRewire,
    InvalidTopology,
    NodeJoinLeave,
    ScriptedTopology,
    TopologyEvents,
    apply_topology_events,
    validate_topology_events,
)


def _mutable(n=8):
    return MutableBalancingGraph.from_graph(families.cycle(n))


def _loads(graph, seed=2, high=100):
    rng = np.random.default_rng(seed)
    return rng.integers(0, high, graph.num_nodes).astype(np.int64)


def _canonical(graph):
    return {
        (min(u, v), max(u, v))
        for u in range(graph.num_nodes)
        for v in graph.neighbors(u)
    }


def _drive(schedule, graph, rounds):
    """Run a schedule against a live graph; returns per-round events."""
    loads = _loads(graph)
    schedule.start(graph, loads)
    history = []
    for t in range(1, rounds + 1):
        events = schedule.round_events(t, loads)
        if events is not None and not events.is_empty():
            validate_topology_events(events, graph)
            apply_topology_events(graph, events, loads)
            graph.check_consistency()
        history.append(events)
    return history


# -- edge churn --------------------------------------------------------


def test_edge_churn_rate_zero_is_free():
    graph = _mutable()
    schedule = EdgeChurn(rate=0.0)
    history = _drive(schedule, graph, 30)
    assert all(e is None or e.is_empty() for e in history)
    assert schedule.summary() == {
        "edges_severed": 0,
        "churn_rounds": 0,
    }


def test_edge_churn_drops_then_restores_after_downtime():
    graph = _mutable()
    before = _canonical(graph)
    schedule = EdgeChurn(rate=1.0, downtime=3, until=1, seed=5)
    loads = _loads(graph)
    schedule.start(graph, loads)
    first = schedule.round_events(1, loads)
    # rate=1: every edge of C_8 is severed in round 1.
    assert first.edge_drops.shape == (8, 2)
    apply_topology_events(graph, first, loads)
    assert _canonical(graph) == set()
    for t in (2, 3):
        events = schedule.round_events(t, loads)
        assert events is None or events.is_empty()
    rejoin = schedule.round_events(4, loads)
    assert rejoin.edge_adds.shape == (8, 2)
    apply_topology_events(graph, rejoin, loads)
    assert _canonical(graph) == before
    assert schedule.summary()["edges_severed"] == 8


def test_edge_churn_cut_mode_severs_the_bisection_periodically():
    graph = _mutable()
    # On C_8 exactly two edges cross the [0,4) | [4,8) bisection.
    schedule = EdgeChurn(mode="cut", period=5, down=2)
    loads = _loads(graph)
    schedule.start(graph, loads)
    for t in range(1, 16):
        events = schedule.round_events(t, loads)
        phase = (t - 1) % 5
        if phase == 0:
            assert {tuple(e) for e in np.sort(events.edge_drops)} == {
                (3, 4),
                (0, 7),
            }
            apply_topology_events(graph, events, loads)
        elif phase == 2:
            assert events.edge_adds.shape == (2, 2)
            apply_topology_events(graph, events, loads)
        else:
            assert events is None or events.is_empty()


def test_edge_churn_never_fails_an_edge_that_is_down():
    graph = _mutable(12)
    schedule = EdgeChurn(rate=0.6, downtime=4, seed=11)
    _drive(schedule, graph, 40)  # validate + apply every round
    assert schedule.summary()["edges_severed"] > 0


# -- node join/leave ---------------------------------------------------


def test_node_join_leave_round_trips_to_original_wiring():
    graph = _mutable()
    before = _canonical(graph)
    schedule = NodeJoinLeave(rate=1.0, rejoin_after=2, until=1, seed=3)
    loads = _loads(graph)
    total = int(loads.sum())
    schedule.start(graph, loads)
    first = schedule.round_events(1, loads)
    # rate=1, until=1: every node leaves in round 1...
    assert first.leaves.size == 8
    apply_topology_events(graph, first, loads)
    assert not graph.active.any()
    assert int(loads.sum()) == total  # nobody to hand off to: parked
    for t in (2,):
        events = schedule.round_events(t, loads)
        assert events is None or events.is_empty()
    # ...and everyone rejoins together, restoring the original fabric.
    rejoin = schedule.round_events(3, loads)
    assert len(rejoin.joins) == 8
    apply_topology_events(graph, rejoin, loads)
    assert graph.active.all()
    assert _canonical(graph) == before
    assert schedule.summary() == {
        "node_departures": 8,
        "node_rejoins": 8,
    }


def test_node_join_leave_rejoins_only_to_present_neighbors():
    graph = _mutable(6)
    schedule = NodeJoinLeave(rate=0.5, rejoin_after=3, seed=1)
    _drive(schedule, graph, 30)
    graph.check_consistency()
    summary = schedule.summary()
    assert summary["node_departures"] >= summary["node_rejoins"] > 0


# -- expander rewire ---------------------------------------------------


def test_expander_rewire_preserves_every_degree():
    graph = MutableBalancingGraph.from_graph(
        families.random_regular(20, 4, seed=2)
    )
    degrees = graph.true_degrees.copy()
    edges = len(_canonical(graph))
    schedule = ExpanderRewire(swaps=3, seed=6)
    _drive(schedule, graph, 25)
    np.testing.assert_array_equal(graph.true_degrees, degrees)
    assert len(_canonical(graph)) == edges
    assert schedule.summary()["swaps_applied"] > 0
    assert (
        schedule.summary()["swaps_attempted"]
        >= schedule.summary()["swaps_applied"]
    )


def test_expander_rewire_tracks_the_live_edge_set():
    graph = _mutable(10)
    schedule = ExpanderRewire(swaps=2, seed=4)
    loads = _loads(graph)
    schedule.start(graph, loads)
    for t in range(1, 30):
        events = schedule.round_events(t, loads)
        if events is None or events.is_empty():
            continue
        live = _canonical(graph)
        for u, v in events.edge_drops:
            assert (min(u, v), max(u, v)) in live
        for u, v in events.edge_adds:
            assert (min(u, v), max(u, v)) not in live
        apply_topology_events(graph, events, loads)
        graph.check_consistency()


# -- scripted ----------------------------------------------------------


def test_scripted_groups_events_by_round_in_engine_order():
    schedule = ScriptedTopology(
        [
            ["add", 3, 0, 2],
            ["drop", 3, 0, 1],
            ["leave", 3, 5],
            ["join", 7, 5, [4, 6]],
        ]
    )
    # A cycle with one spare port per node, so the add has room.
    graph = MutableBalancingGraph.from_neighbor_lists(
        [[(i - 1) % 8, (i + 1) % 8] for i in range(8)],
        d_max=3,
        num_self_loops=0,
    )
    loads = _loads(graph)
    schedule.start(graph, loads)
    assert schedule.round_events(1, loads) is None
    batch = schedule.round_events(3, loads)
    assert not batch.trusted  # scripted streams are validated per round
    assert batch.leaves.tolist() == [5]
    assert batch.edge_drops.tolist() == [[0, 1]]
    assert batch.edge_adds.tolist() == [[0, 2]]
    apply_topology_events(graph, batch, loads)
    rejoin = schedule.round_events(7, loads)
    apply_topology_events(graph, rejoin, loads)
    assert graph.neighbors(5) == (4, 6)
    assert schedule.summary() == {"topology_events_applied": 4}


@pytest.mark.parametrize(
    "bad",
    [
        [["teleport", 1, 0, 1]],
        [["drop", 1, 0]],
        [["leave", 0, 3]],
        [["join", 2, 1]],
    ],
)
def test_scripted_rejects_malformed_events(bad):
    with pytest.raises(InvalidTopology):
        ScriptedTopology(bad)


def test_scripted_apply_rejects_impossible_operations():
    graph = _mutable()
    loads = _loads(graph)
    for events in (
        [["drop", 1, 0, 4]],  # absent edge
        [["add", 1, 0, 1]],  # already present
        [["join", 1, 2, [3]]],  # node still active
    ):
        schedule = ScriptedTopology(events)
        schedule.start(graph, loads)
        with pytest.raises(GraphValidationError):
            apply_topology_events(
                graph, schedule.round_events(1, loads), loads
            )


# -- constructor validation --------------------------------------------


@pytest.mark.parametrize(
    "factory",
    [
        lambda: EdgeChurn(rate=1.5),
        lambda: EdgeChurn(downtime=0),
        lambda: EdgeChurn(mode="meteor"),
        lambda: EdgeChurn(mode="cut", period=0),
        lambda: EdgeChurn(mode="cut", period=3, down=4),
        lambda: EdgeChurn(until=-1),
        lambda: NodeJoinLeave(rate=-0.1),
        lambda: NodeJoinLeave(rejoin_after=0),
        lambda: ExpanderRewire(swaps=-1),
    ],
)
def test_invalid_parameters_raise(factory):
    with pytest.raises(InvalidTopology):
        factory()


# -- the structural validator ------------------------------------------


def _events(**kwargs):
    empty_pairs = np.empty((0, 2), dtype=np.int64)
    empty_nodes = np.empty(0, dtype=np.int64)
    defaults = dict(
        edge_drops=empty_pairs,
        edge_adds=empty_pairs,
        leaves=empty_nodes,
        joins=(),
    )
    defaults.update(
        {
            k: np.asarray(v, dtype=np.int64) if k != "joins" else v
            for k, v in kwargs.items()
        }
    )
    return TopologyEvents(**defaults)


@pytest.mark.parametrize(
    "events",
    [
        _events(edge_drops=[[0, 9]]),  # out of range
        _events(edge_adds=[[2, 2]]),  # self-edge
        _events(edge_drops=[[0, 1], [1, 0]]),  # duplicate edge
        _events(leaves=[3, 3]),  # duplicate leave
        _events(leaves=[-1]),
        _events(joins=((2, (1,)), (2, (3,)))),  # double join
        _events(joins=((1, (99,)),)),  # neighbor out of range
    ],
)
def test_validate_topology_events_rejects(events):
    graph = _mutable(8)
    with pytest.raises(InvalidTopology):
        validate_topology_events(events, graph)


# -- the applicator ----------------------------------------------------


def test_leave_handoff_splits_load_in_port_order():
    graph = _mutable(6)
    loads = np.zeros(6, dtype=np.int64)
    loads[2] = 11  # neighbors of 2 are (1, 3): 6 and 5 after divmod
    apply_topology_events(
        graph, _events(leaves=[2]), loads
    )
    assert loads.tolist() == [0, 6, 0, 5, 0, 0]
    assert not graph.active[2]


def test_leave_with_no_neighbors_parks_the_load():
    graph = _mutable(6)
    loads = np.zeros(6, dtype=np.int64)
    loads[2] = 7
    graph.drop_edge(1, 2)
    graph.drop_edge(2, 3)
    apply_topology_events(graph, _events(leaves=[2]), loads)
    assert loads[2] == 7
    assert not graph.active[2]


# -- determinism -------------------------------------------------------


@pytest.mark.parametrize(
    "factory",
    [
        lambda: EdgeChurn(rate=0.4, downtime=3, seed=9),
        lambda: NodeJoinLeave(rate=0.3, rejoin_after=2, seed=9),
        lambda: ExpanderRewire(swaps=2, seed=9),
    ],
)
def test_restart_resets_the_stream(factory):
    def history(schedule):
        graph = _mutable(10)
        events = _drive(schedule, graph, 20)
        return [
            None
            if e is None or e.is_empty()
            else (
                e.edge_drops.tolist(),
                e.edge_adds.tolist(),
                e.leaves.tolist(),
                tuple((n, tuple(vs)) for n, vs in e.joins),
            )
            for e in events
        ]

    schedule = factory()
    first = history(schedule)
    second = history(schedule)  # restarted via start()
    fresh = history(factory())
    assert first == second == fresh
    assert any(h is not None for h in first)
