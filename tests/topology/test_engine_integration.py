"""Engine-level topology integration: guards, isolation, incrementality.

The differential suite proves the churned trajectories are *right*;
this file pins the surrounding contracts — mutual exclusion with
faults, caller-graph isolation, run-record accounting — and the
subsystem's reason to exist: balancer refresh touches only the rows
churn actually dirtied, never the whole graph.
"""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.faults import FaultSpec
from repro.graphs import families
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)
from repro.scenarios.batch import BatchRunner
from repro.topology import EdgeChurn, TopologySpec


def _loads(graph, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 200, graph.num_nodes).astype(np.int64)


def test_simulator_rejects_faults_with_topology():
    graph = families.cycle(8)
    with pytest.raises(ValueError, match="faults and topology"):
        Simulator(
            graph,
            make("send_floor"),
            _loads(graph),
            faults=FaultSpec("message_drop", {"rate": 0.1}).build(),
            topology=EdgeChurn(rate=0.1),
        )


def test_batch_runner_rejects_faults_and_shared_balancers():
    graph = families.cycle(8)
    initial = np.stack([_loads(graph, s) for s in (1, 2)])
    spec = TopologySpec("edge_churn", {"rate": 0.1})
    with pytest.raises(ValueError, match="faults and topology"):
        BatchRunner(
            graph,
            [make("send_floor") for _ in range(2)],
            initial,
            faults=FaultSpec("message_drop", {"rate": 0.1}),
            topology=spec,
        )
    with pytest.raises(ValueError, match="shared-balancer"):
        BatchRunner(graph, make("send_floor"), initial, topology=spec)


def test_scenario_rejects_faults_and_raw_schedule_instances():
    base = dict(
        graph=GraphSpec("cycle", {"n": 8}),
        algorithm=AlgorithmSpec("send_floor"),
        loads=LoadSpec("uniform_random", {"total_tokens": 100, "seed": 1}),
        stop=StopRule.fixed(5),
    )
    with pytest.raises(ValueError, match="faults and topology"):
        Scenario(
            **base,
            faults=FaultSpec("message_drop", {"rate": 0.1}),
            topology=TopologySpec("edge_churn"),
        )
    with pytest.raises(ValueError, match="fresh topology schedules"):
        Scenario(**base, replicas=3, topology=EdgeChurn(rate=0.1))


def test_simulator_never_mutates_the_callers_graph():
    graph = families.cycle(10)
    adjacency = graph.adjacency.copy()
    reverse = graph.reverse_port.copy()
    Simulator(
        graph,
        make("send_floor"),
        _loads(graph),
        topology=EdgeChurn(rate=0.5, seed=1),
    ).run(20)
    np.testing.assert_array_equal(graph.adjacency, adjacency)
    np.testing.assert_array_equal(graph.reverse_port, reverse)


def test_record_accounts_churned_rounds():
    graph = families.cycle(10)
    result = Simulator(
        graph,
        make("send_floor"),
        _loads(graph),
        topology=EdgeChurn(rate=0.5, downtime=2, seed=1),
    ).run(25)
    summary = result.record.summary
    assert summary["topology_schedule"] == "edge_churn"
    assert 0 < summary["topology_rounds"] <= 25
    assert summary["edges_severed"] > 0


def test_rotor_refresh_is_incremental_not_full():
    """The profile claim behind the subsystem: a single churned edge
    refreshes O(dirty) balancer rows, independent of n."""
    graph = families.random_regular(1024, 8, seed=5)
    u = 0
    v = int(graph.adjacency[0, 0])
    spec = TopologySpec(
        "scripted",
        {"events": [["drop", 5, u, v], ["add", 10, u, v]]},
    )
    balancer = make("rotor_router")
    Simulator(
        graph,
        balancer,
        _loads(graph),
        topology=spec.build(),
        engine="structured",
    ).run(20)
    # Full rebinds would recompute 1024 rows per churned round; the
    # dirty path touches only the handful of repaired endpoints.
    assert balancer.refresh_full == 0
    assert 0 < balancer.refresh_rows <= 16


def test_rotor_refresh_rows_scale_with_churn_not_size():
    rows = {}
    for n in (256, 1024):
        graph = families.random_regular(n, 8, seed=5)
        u = 0
        v = int(graph.adjacency[0, 0])
        spec = TopologySpec(
            "scripted",
            {"events": [["drop", 3, u, v], ["add", 6, u, v]]},
        )
        balancer = make("rotor_router")
        Simulator(
            graph,
            balancer,
            _loads(graph),
            topology=spec.build(),
            engine="structured",
        ).run(10)
        rows[n] = balancer.refresh_rows
    # Quadrupling the graph must not change the refresh bill.
    assert rows[256] == rows[1024]
