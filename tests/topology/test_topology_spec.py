"""TopologySpec: registry construction, round-trips, replica offsets."""

import pytest

from repro.topology import (
    TOPOLOGIES,
    EdgeChurn,
    TopologySchedule,
    TopologySpec,
    as_topology_schedule,
)


def test_registry_lists_builtin_schedules():
    assert {
        "edge_churn",
        "node_join_leave",
        "expander_rewire",
        "scripted",
    } == set(TOPOLOGIES.names())


def test_build_constructs_registered_schedule():
    schedule = TopologySpec(
        "edge_churn", {"rate": 0.2, "seed": 3}
    ).build()
    assert isinstance(schedule, EdgeChurn)
    assert schedule.rate == 0.2 and schedule.seed == 3


def test_build_offsets_seed_per_replica():
    spec = TopologySpec("node_join_leave", {"rate": 0.1, "seed": 10})
    assert spec.build(0).seed == 10
    assert spec.build(3).seed == 13
    # Seedless specs are replica-invariant.
    scripted = TopologySpec("scripted", {"events": []})
    assert scripted.build(2).events == scripted.build(0).events


def test_dict_round_trip_and_parse():
    spec = TopologySpec("edge_churn", {"rate": 0.05, "downtime": 3})
    assert TopologySpec.from_dict(spec.to_dict()) == spec
    assert TopologySpec.to_dict(
        TopologySpec("expander_rewire")
    ) == {"name": "expander_rewire"}
    parsed = TopologySpec.parse('edge_churn:{"rate": 0.4, "seed": 7}')
    assert parsed == TopologySpec(
        "edge_churn", {"rate": 0.4, "seed": 7}
    )
    assert TopologySpec.parse("expander_rewire") == TopologySpec(
        "expander_rewire"
    )


def test_specs_are_hashable():
    a = TopologySpec("edge_churn", {"rate": 0.1})
    b = TopologySpec("edge_churn", {"rate": 0.1})
    assert len({a, b}) == 1


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        TopologySpec("continental_drift").build()


def test_as_topology_schedule_coercions():
    assert as_topology_schedule(None) is None
    built = as_topology_schedule(
        TopologySpec("edge_churn", {"seed": 1}), 2
    )
    assert built.seed == 3
    ready = EdgeChurn(rate=0.5)
    assert as_topology_schedule(ready) is ready
    assert isinstance(ready, TopologySchedule)
    with pytest.raises(TypeError):
        as_topology_schedule("edge_churn")
