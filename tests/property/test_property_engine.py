"""Property-based invariants of the engine + deterministic algorithms.

For arbitrary small graphs and arbitrary nonnegative load vectors:

* token conservation holds at every round;
* loads never go negative for negative-load-safe algorithms;
* deterministic algorithms are reproducible run-to-run.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    RotorRouter,
    RotorRouterStar,
    SendFloor,
    SendRounded,
)
from repro.core.engine import Simulator
from repro.core.monitors import LoadBoundsMonitor

from tests.helpers import balancing_graphs, load_vectors


COMMON_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_loads(draw):
    graph = draw(balancing_graphs())
    loads = draw(load_vectors(graph.num_nodes))
    return graph, loads


@given(case=graph_and_loads(), rounds=st.integers(1, 12))
@settings(**COMMON_SETTINGS)
def test_conservation_send_floor(case, rounds):
    graph, loads = case
    total = int(loads.sum())
    simulator = Simulator(graph, SendFloor(), loads)
    result = simulator.run(rounds)
    assert result.final_loads.sum() == total


@given(case=graph_and_loads(), rounds=st.integers(1, 12))
@settings(**COMMON_SETTINGS)
def test_conservation_rotor_router(case, rounds):
    graph, loads = case
    total = int(loads.sum())
    simulator = Simulator(graph, RotorRouter(), loads)
    result = simulator.run(rounds)
    assert result.final_loads.sum() == total


@given(case=graph_and_loads())
@settings(**COMMON_SETTINGS)
def test_never_negative_for_safe_algorithms(case):
    graph, loads = case
    for balancer in (
        SendFloor(),
        SendRounded(),
        RotorRouter(),
        RotorRouterStar(),
    ):
        monitor = LoadBoundsMonitor()
        simulator = Simulator(
            graph, balancer, loads, monitors=(monitor,)
        )
        simulator.run(8)
        assert monitor.min_ever >= 0


@given(case=graph_and_loads())
@settings(**COMMON_SETTINGS)
def test_rotor_router_reproducible(case):
    graph, loads = case
    a = Simulator(graph, RotorRouter(), loads)
    b = Simulator(graph, RotorRouter(), loads)
    for _ in range(8):
        np.testing.assert_array_equal(a.step(), b.step())


@given(case=graph_and_loads())
@settings(**COMMON_SETTINGS)
def test_max_load_never_explodes(case):
    """φ(c) monotonicity caps the max load for round-fair schemes.

    For any round-fair balancer, tokens above height c·d+ never
    increase (token-coloring argument of Lemma 3.5), so the max load
    stays below ``⌈max/d+⌉·d+ <= max + d+ - 1`` forever.
    """
    graph, loads = case
    d_plus = graph.total_degree
    ceiling = -(-int(loads.max()) // d_plus) * d_plus
    simulator = Simulator(graph, RotorRouter(), loads)
    for _ in range(8):
        after = simulator.step()
        assert after.max() <= ceiling
