"""Property-based tests for Lemmas 3.5/3.7 and basic potential algebra."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import RotorRouterStar
from repro.core.engine import Simulator
from repro.core.potentials import PotentialMonitor, phi, phi_prime

from tests.helpers import balancing_graphs, load_vectors


COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_loads(draw):
    graph = draw(balancing_graphs())
    loads = draw(load_vectors(graph.num_nodes))
    return graph, loads


@given(
    loads=load_vectors(12),
    c=st.integers(0, 30),
    d_plus=st.integers(2, 12),
)
@settings(**COMMON_SETTINGS)
def test_phi_definition_algebra(loads, c, d_plus):
    value = phi(loads, c, d_plus)
    assert value == int(np.maximum(loads - c * d_plus, 0).sum())
    assert value >= 0
    # φ decreasing in c.
    assert phi(loads, c + 1, d_plus) <= value


@given(
    loads=load_vectors(12),
    c=st.integers(0, 30),
    d_plus=st.integers(2, 12),
    s=st.integers(0, 6),
)
@settings(**COMMON_SETTINGS)
def test_phi_prime_definition_algebra(loads, c, d_plus, s):
    value = phi_prime(loads, c, d_plus, s)
    assert value >= 0
    # φ' increasing in c and in s.
    assert phi_prime(loads, c + 1, d_plus, s) >= value
    assert phi_prime(loads, c, d_plus, s + 1) >= value


@given(case=graph_and_loads(), rounds=st.integers(2, 10))
@settings(**COMMON_SETTINGS)
def test_potentials_monotone_for_good_balancers(case, rounds):
    """Lemmas 3.5 / 3.7 hold on every random instance."""
    graph, loads = case
    average = loads.mean()
    c_center = max(int(average // graph.total_degree), 0)
    monitor = PotentialMonitor(
        [c_center, c_center + 1, c_center + 3], s=1
    )
    simulator = Simulator(
        graph, RotorRouterStar(), loads, monitors=(monitor,)
    )
    simulator.run(rounds)
    assert monitor.all_monotone()
