"""Property-based tests for the non-regular (padding) extension.

Random connected irregular graphs × random loads: the engine
invariants and the Observation 2.2 classifications must survive the
padding reduction unchanged.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import RotorRouter, SendFloor
from repro.core.engine import Simulator
from repro.core.reference import ReferenceSimulator
from repro.graphs.irregular import from_irregular_edges

from tests.helpers import load_vectors, run_monitored


COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def irregular_graphs(draw):
    """A random connected simple graph: a tree plus random chords."""
    n = draw(st.integers(4, 14))
    edges = set()
    # Random spanning tree guarantees connectivity.
    for node in range(1, n):
        parent = draw(st.integers(0, node - 1))
        edges.add((parent, node))
    num_chords = draw(st.integers(0, n))
    for _ in range(num_chords):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return from_irregular_edges(n, sorted(edges))


@st.composite
def irregular_case(draw):
    graph = draw(irregular_graphs())
    loads = draw(load_vectors(graph.num_nodes, max_load=120))
    return graph, loads


@given(case=irregular_case(), rounds=st.integers(1, 8))
@settings(**COMMON_SETTINGS)
def test_conservation_on_irregular(case, rounds):
    graph, loads = case
    simulator = Simulator(graph, RotorRouter(), loads)
    result = simulator.run(rounds)
    assert result.final_loads.sum() == loads.sum()
    assert result.final_loads.min() >= 0


@given(case=irregular_case())
@settings(**COMMON_SETTINGS)
def test_engine_matches_reference_on_irregular(case):
    graph, loads = case
    fast = Simulator(graph, RotorRouter(), loads.copy())
    slow = ReferenceSimulator(graph, RotorRouter(), loads.copy())
    for _ in range(4):
        np.testing.assert_array_equal(
            fast.step(), np.array(slow.step(), dtype=np.int64)
        )


@given(case=irregular_case(), rounds=st.integers(2, 8))
@settings(**COMMON_SETTINGS)
def test_fairness_survives_padding(case, rounds):
    graph, loads = case
    _, rotor_verdict, _, _ = run_monitored(
        graph, RotorRouter(), loads, rounds
    )
    assert rotor_verdict.round_fair
    assert rotor_verdict.observed_delta <= 1
    _, floor_verdict, _, _ = run_monitored(
        graph, SendFloor(), loads, rounds
    )
    assert floor_verdict.is_cumulatively_fair(0)
