"""Hypothesis strategies shared by the property-based suites."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graphs import families


@st.composite
def balancing_graphs(draw, max_self_loops: int = 8):
    """A small graph from a random family with a random d° >= d."""
    family = draw(
        st.sampled_from(
            ["cycle", "complete", "hypercube", "torus", "random_regular"]
        )
    )
    if family == "cycle":
        n = draw(st.integers(3, 16))
        base = families.cycle(n)
    elif family == "complete":
        n = draw(st.integers(3, 10))
        base = families.complete(n)
    elif family == "hypercube":
        dim = draw(st.integers(2, 4))
        base = families.hypercube(dim)
    elif family == "torus":
        side = draw(st.integers(3, 4))
        base = families.torus(side, 2)
    else:
        n = draw(st.sampled_from([8, 12, 16]))
        degree = draw(st.sampled_from([3, 4]))
        base = families.random_regular(n, degree, seed=draw(st.integers(0, 50)))
    loops = draw(
        st.integers(base.degree, base.degree + max_self_loops)
    )
    return base.with_self_loops(loops)


@st.composite
def load_vectors(draw, n: int, max_load: int = 200):
    """A nonnegative integer load vector of length n."""
    values = draw(
        st.lists(
            st.integers(0, max_load), min_size=n, max_size=n
        )
    )
    return np.array(values, dtype=np.int64)
