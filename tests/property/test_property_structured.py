"""Property tests: structured execution is bit-identical to dense.

The structured engine (compact rounds, matrix-free gathers) must
reproduce the dense engine's trajectories exactly — same loads after
every round, same discrepancy history — for every structured balancer,
across graph families, load shapes, self-loop counts, looped and
batched execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.graphs import families
from repro.scenarios.batch import BatchRunner
from tests.helpers import balancing_graphs, load_vectors

STRUCTURED_ALGORITHMS = ["send_floor", "send_rounded", "rotor_router"]


def _graph_for(name):
    return {
        "cycle": lambda: families.cycle(15),
        "torus": lambda: families.torus(4, 2),
        "hypercube": lambda: families.hypercube(4),
        "random_regular": lambda: families.random_regular(20, 4, seed=9),
    }[name]()


@pytest.mark.parametrize("algorithm", STRUCTURED_ALGORITHMS)
@pytest.mark.parametrize(
    "family", ["cycle", "torus", "hypercube", "random_regular"]
)
def test_looped_parity_across_families(algorithm, family):
    """Seeded sweep: identical trajectories on every standard family."""
    graph = _graph_for(family)
    rng = np.random.default_rng(42)
    loads = rng.integers(0, 300, graph.num_nodes).astype(np.int64)
    dense = Simulator(graph, make(algorithm), loads, engine="dense").run(
        80
    )
    structured = Simulator(
        graph, make(algorithm), loads, engine="structured"
    ).run(80)
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    assert dense.discrepancy_history == structured.discrepancy_history


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_looped_parity_random_graphs(data):
    """Hypothesis: random graph × d° × loads × algorithm, full parity."""
    graph = data.draw(balancing_graphs())
    algorithm = data.draw(st.sampled_from(STRUCTURED_ALGORITHMS))
    if (
        algorithm == "send_rounded"
        and graph.total_degree < 2 * graph.degree
    ):
        algorithm = "send_floor"
    loads = data.draw(load_vectors(graph.num_nodes))
    rounds = data.draw(st.integers(1, 25))
    dense = Simulator(
        graph, make(algorithm), loads, engine="dense"
    ).run(rounds)
    structured = Simulator(
        graph, make(algorithm), loads, engine="structured"
    ).run(rounds)
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    assert dense.discrepancy_history == structured.discrepancy_history


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_batched_parity_stateless(data):
    """Hypothesis: shared stateless balancer over a replica batch."""
    graph = data.draw(balancing_graphs(max_self_loops=4))
    algorithm = data.draw(st.sampled_from(["send_floor", "send_rounded"]))
    if (
        algorithm == "send_rounded"
        and graph.total_degree < 2 * graph.degree
    ):
        algorithm = "send_floor"
    replicas = data.draw(st.integers(1, 5))
    initial = np.stack(
        [
            data.draw(load_vectors(graph.num_nodes))
            for _ in range(replicas)
        ]
    )
    rounds = data.draw(st.integers(1, 15))
    dense = BatchRunner(
        graph, make(algorithm), initial, engine="dense"
    ).run(rounds)
    structured = BatchRunner(
        graph, make(algorithm), initial, engine="structured"
    ).run(rounds)
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    assert dense.histories == structured.histories


@pytest.mark.parametrize(
    "family", ["cycle", "torus", "hypercube", "random_regular"]
)
def test_batched_parity_stateful_rotors(family):
    """Per-replica rotor instances: structured batch matches dense."""
    graph = _graph_for(family)
    rng = np.random.default_rng(3)
    replicas = 6
    initial = rng.integers(0, 400, (replicas, graph.num_nodes)).astype(
        np.int64
    )
    dense = BatchRunner(
        graph,
        [make("rotor_router") for _ in range(replicas)],
        initial,
        engine="dense",
    ).run(40)
    structured = BatchRunner(
        graph,
        [make("rotor_router") for _ in range(replicas)],
        initial,
        engine="structured",
    ).run(40)
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    assert dense.histories == structured.histories


@pytest.mark.parametrize("algorithm", ["send_floor", "rotor_router"])
def test_batched_run_until_parity(algorithm):
    """Early-stopping batches freeze replicas identically per engine."""
    graph = families.cycle(15)
    rng = np.random.default_rng(11)
    replicas = 4
    initial = rng.integers(0, 300, (replicas, graph.num_nodes)).astype(
        np.int64
    )

    def balancers():
        if algorithm == "rotor_router":
            return [make(algorithm) for _ in range(replicas)]
        return make(algorithm)

    def predicates():
        return [
            lambda loads: int(loads.max() - loads.min()) <= 12
            for _ in range(replicas)
        ]

    dense = BatchRunner(
        graph, balancers(), initial, engine="dense"
    ).run_until(predicates(), max_rounds=300, check_every=2)
    structured = BatchRunner(
        graph, balancers(), initial, engine="structured"
    ).run_until(predicates(), max_rounds=300, check_every=2)
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    np.testing.assert_array_equal(
        dense.rounds_executed, structured.rounds_executed
    )
    np.testing.assert_array_equal(
        dense.stopped_early, structured.stopped_early
    )
    assert dense.histories == structured.histories


def test_simulator_matches_batch_structured():
    """Triangle parity: looped dense == looped structured == batch."""
    graph = families.torus(4, 2)
    rng = np.random.default_rng(21)
    replicas = 5
    initial = rng.integers(0, 500, (replicas, graph.num_nodes)).astype(
        np.int64
    )
    batch = BatchRunner(
        graph, make("send_floor"), initial, engine="structured"
    ).run(60)
    for replica in range(replicas):
        looped = Simulator(
            graph, make("send_floor"), initial[replica], engine="dense"
        ).run(60)
        np.testing.assert_array_equal(
            batch.final_loads[replica], looped.final_loads
        )
        assert batch.histories[replica] == looped.discrepancy_history
