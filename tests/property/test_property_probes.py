"""Property tests: loads-only probes never perturb trajectories.

The capability-typed observation layer promises that attaching
loads-only probes (discrepancy, load bounds, trajectory snapshots,
period detection, potentials) keeps ``engine="auto"`` on the structured
path — and that the structured-with-probes run is bit-identical to the
dense run, looped and batched, fixed-round and ``run_until``.  The
probes themselves must also read identical data on both engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.metrics import discrepancy
from repro.core.monitors import (
    DiscrepancyRecorder,
    LoadBoundsMonitor,
    PeriodDetector,
    TrajectoryRecorder,
)
from repro.core.potentials import PotentialMonitor
from repro.graphs import families
from repro.scenarios.batch import BatchRunner
from tests.helpers import balancing_graphs, load_vectors

STRUCTURED_ALGORITHMS = ["send_floor", "send_rounded", "rotor_router"]


def _probe_set():
    return (
        DiscrepancyRecorder(),
        LoadBoundsMonitor(),
        TrajectoryRecorder(stride=4),
        PeriodDetector(),
        PotentialMonitor([1, 2], s=1),
    )


def _probe_facts(probes):
    recorder, bounds, trajectory, period, potentials = probes
    return (
        recorder.history,
        (bounds.min_ever, bounds.max_ever),
        [s.tolist() for s in trajectory.snapshots],
        (period.period, period.first_repeat_round),
        potentials.phi_history,
        potentials.phi_prime_history,
    )


def _graph_for(name):
    return {
        "cycle": lambda: families.cycle(15),
        "torus": lambda: families.torus(4, 2),
        "hypercube": lambda: families.hypercube(4),
        "random_regular": lambda: families.random_regular(20, 4, seed=9),
    }[name]()


@pytest.mark.parametrize("algorithm", STRUCTURED_ALGORITHMS)
@pytest.mark.parametrize(
    "family", ["cycle", "torus", "hypercube", "random_regular"]
)
def test_looped_parity_with_probes(algorithm, family):
    """Seeded sweep: probes attached, engines still bit-identical."""
    graph = _graph_for(family)
    rng = np.random.default_rng(7)
    loads = rng.integers(0, 300, graph.num_nodes).astype(np.int64)
    results, facts = [], []
    for engine in ("dense", "structured"):
        probes = _probe_set()
        simulator = Simulator(
            graph, make(algorithm), loads, probes=probes, engine=engine
        )
        results.append(simulator.run(60))
        facts.append(_probe_facts(probes))
    dense, structured = results
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    assert dense.discrepancy_history == structured.discrepancy_history
    assert facts[0] == facts[1]


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_looped_parity_with_probes_random_graphs(data):
    """Hypothesis: random graph × loads × algorithm, probes attached."""
    graph = data.draw(balancing_graphs())
    algorithm = data.draw(st.sampled_from(STRUCTURED_ALGORITHMS))
    loads = data.draw(load_vectors(graph.num_nodes))
    rounds = data.draw(st.integers(1, 40))
    facts = []
    finals = []
    for engine in ("dense", "structured"):
        probes = _probe_set()
        simulator = Simulator(
            graph, make(algorithm), loads, probes=probes, engine=engine
        )
        assert simulator.engine == engine
        finals.append(simulator.run(rounds).final_loads)
        facts.append(_probe_facts(probes))
    np.testing.assert_array_equal(finals[0], finals[1])
    assert facts[0] == facts[1]


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_run_until_parity_with_probes(data):
    """run_until with probes: same stopping round, same probe data."""
    graph = data.draw(balancing_graphs(max_self_loops=4))
    algorithm = data.draw(st.sampled_from(STRUCTURED_ALGORITHMS))
    loads = data.draw(load_vectors(graph.num_nodes, max_load=120))
    target = max(2 * graph.total_degree, 4)
    outcomes = []
    for engine in ("dense", "structured"):
        probes = _probe_set()
        simulator = Simulator(
            graph, make(algorithm), loads, probes=probes, engine=engine
        )
        result = simulator.run_until(
            lambda x: discrepancy(x) <= target, max_rounds=60
        )
        outcomes.append(
            (
                result.rounds_executed,
                result.stopped_early,
                result.final_loads.tolist(),
                _probe_facts(probes),
            )
        )
    assert outcomes[0] == outcomes[1]


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_batched_probes_match_looped(data):
    """BatchRunner with loads-only probes == looped run, per replica."""
    graph = data.draw(balancing_graphs(max_self_loops=4))
    algorithm = data.draw(st.sampled_from(STRUCTURED_ALGORITHMS))
    replicas = data.draw(st.integers(1, 4))
    rounds = data.draw(st.integers(1, 25))
    stack = np.stack(
        [
            data.draw(load_vectors(graph.num_nodes, max_load=150))
            for _ in range(replicas)
        ]
    )
    batch_probe_sets = [_probe_set() for _ in range(replicas)]
    runner = BatchRunner(
        graph,
        [make(algorithm) for _ in range(replicas)],
        stack,
        probes=batch_probe_sets,
    )
    batch = runner.run(rounds)
    for replica in range(replicas):
        probes = _probe_set()
        looped = Simulator(
            graph, make(algorithm), stack[replica], probes=probes
        ).run(rounds)
        np.testing.assert_array_equal(
            batch.final_loads[replica], looped.final_loads
        )
        assert batch.histories[replica] == looped.discrepancy_history
        assert _probe_facts(batch_probe_sets[replica]) == _probe_facts(
            probes
        )


def test_batched_run_until_with_probes():
    """Frozen replicas stop feeding probes, matching looped runs."""
    graph = families.cycle(12)
    stack = np.stack(
        [
            np.arange(12, dtype=np.int64) * 10,
            np.full(12, 5, dtype=np.int64),
        ]
    )
    target = 8
    batch_probe_sets = [_probe_set() for _ in range(2)]
    runner = BatchRunner(
        graph,
        [make("send_floor") for _ in range(2)],
        stack,
        probes=batch_probe_sets,
    )
    predicates = [
        (lambda x: discrepancy(x) <= target) for _ in range(2)
    ]
    batch = runner.run_until(predicates, max_rounds=80)
    for replica in range(2):
        probes = _probe_set()
        looped = Simulator(
            graph, make("send_floor"), stack[replica], probes=probes
        ).run_until(lambda x: discrepancy(x) <= target, max_rounds=80)
        assert bool(batch.stopped_early[replica]) == looped.stopped_early
        assert (
            int(batch.rounds_executed[replica])
            == looped.rounds_executed
        )
        assert _probe_facts(batch_probe_sets[replica]) == _probe_facts(
            probes
        )
