"""Property-based verification of the paper's classification claims.

Observations 2.2 / 3.2 as universally quantified statements over random
small graphs and random load vectors, checked by the runtime monitors.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    RotorRouter,
    RotorRouterStar,
    SendFloor,
    SendRounded,
    effective_self_preference,
)

from tests.helpers import balancing_graphs, load_vectors, run_monitored


COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_loads(draw):
    graph = draw(balancing_graphs())
    loads = draw(load_vectors(graph.num_nodes))
    return graph, loads


@given(case=graph_and_loads(), rounds=st.integers(2, 10))
@settings(**COMMON_SETTINGS)
def test_send_floor_is_cumulatively_0_fair(case, rounds):
    graph, loads = case
    _, verdict, _, _ = run_monitored(graph, SendFloor(), loads, rounds)
    assert verdict.is_cumulatively_fair(0)


@given(case=graph_and_loads(), rounds=st.integers(2, 10))
@settings(**COMMON_SETTINGS)
def test_send_rounded_is_cumulatively_0_fair(case, rounds):
    graph, loads = case
    _, verdict, _, _ = run_monitored(graph, SendRounded(), loads, rounds)
    assert verdict.is_cumulatively_fair(0)


@given(case=graph_and_loads(), rounds=st.integers(2, 10))
@settings(**COMMON_SETTINGS)
def test_rotor_router_is_cumulatively_1_fair_and_round_fair(case, rounds):
    graph, loads = case
    _, verdict, _, _ = run_monitored(graph, RotorRouter(), loads, rounds)
    assert verdict.round_fair
    assert verdict.is_cumulatively_fair(1)


@given(case=graph_and_loads(), rounds=st.integers(2, 10))
@settings(**COMMON_SETTINGS)
def test_rotor_router_star_is_good_1_balancer(case, rounds):
    graph, loads = case
    _, verdict, _, _ = run_monitored(
        graph, RotorRouterStar(), loads, rounds, s=1
    )
    assert verdict.is_good_balancer


@given(case=graph_and_loads(), rounds=st.integers(2, 8))
@settings(**COMMON_SETTINGS)
def test_send_rounded_is_good_s_balancer(case, rounds):
    graph, loads = case
    s = effective_self_preference(graph.degree, graph.total_degree)
    if s < 1:
        return  # d+ <= 2d: Observation 3.2 does not apply
    _, verdict, _, _ = run_monitored(
        graph, SendRounded(), loads, rounds, s=s
    )
    assert verdict.is_good_balancer
