"""Property-based structural invariants of the graph substrate."""

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.graphs.spectral import eigenvalue_gap, eigenvalues

from tests.helpers import balancing_graphs


COMMON_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(graph=balancing_graphs())
@settings(**COMMON_SETTINGS)
def test_reverse_port_is_involution(graph):
    adjacency = graph.adjacency
    reverse = graph.reverse_port
    n, d = adjacency.shape
    for u in range(min(n, 8)):
        for p in range(d):
            v = adjacency[u, p]
            q = reverse[u, p]
            assert adjacency[v, q] == u
            assert reverse[v, q] == p


@given(graph=balancing_graphs())
@settings(**COMMON_SETTINGS)
def test_transition_matrix_is_doubly_stochastic(graph):
    matrix = graph.transition_matrix()
    np.testing.assert_allclose(matrix.sum(axis=0), 1.0, atol=1e-12)
    np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)


@given(graph=balancing_graphs())
@settings(**COMMON_SETTINGS)
def test_spectrum_in_unit_interval_for_lazy_chains(graph):
    # Strategy guarantees d° >= d, hence a positive chain.
    values = eigenvalues(graph)
    assert values[0] == np.max(values)
    assert abs(values[0] - 1.0) < 1e-9
    assert values[-1] >= -1e-9


@given(graph=balancing_graphs())
@settings(**COMMON_SETTINGS)
def test_gap_positive_for_connected_graphs(graph):
    assert eigenvalue_gap(graph) > 0


@given(graph=balancing_graphs())
@settings(**COMMON_SETTINGS)
def test_bfs_distances_are_metric_along_edges(graph):
    dist = graph.distances_from(0)
    assert dist[0] == 0
    for u in range(graph.num_nodes):
        for v in graph.neighbors(u):
            assert abs(int(dist[u]) - int(dist[v])) <= 1
