"""Differential testing: vectorized engine vs naive reference engine.

The reference engine moves tokens one port at a time in plain Python;
if the fast engine ever disagrees with it on any (graph, algorithm,
loads, rounds) combination, one of them is wrong — and the reference
is simple enough to trust.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    RotorRouter,
    RotorRouterStar,
    SendFloor,
    SendRounded,
)
from repro.core.engine import Simulator
from repro.core.reference import ReferenceSimulator

from tests.helpers import balancing_graphs, load_vectors


COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def scenario(draw):
    graph = draw(balancing_graphs(max_self_loops=4))
    loads = draw(load_vectors(graph.num_nodes, max_load=100))
    rounds = draw(st.integers(1, 6))
    return graph, loads, rounds


def assert_engines_agree(graph, loads, rounds, make_balancer):
    fast = Simulator(
        graph, make_balancer(), loads.copy(), record_history=False
    )
    slow = ReferenceSimulator(graph, make_balancer(), loads.copy())
    for _ in range(rounds):
        fast_loads = fast.step()
        slow_loads = slow.step()
        np.testing.assert_array_equal(
            fast_loads, np.array(slow_loads, dtype=np.int64)
        )


@given(case=scenario())
@settings(**COMMON_SETTINGS)
def test_send_floor_matches_reference(case):
    graph, loads, rounds = case
    assert_engines_agree(graph, loads, rounds, SendFloor)


@given(case=scenario())
@settings(**COMMON_SETTINGS)
def test_send_rounded_matches_reference(case):
    graph, loads, rounds = case
    assert_engines_agree(graph, loads, rounds, SendRounded)


@given(case=scenario())
@settings(**COMMON_SETTINGS)
def test_rotor_router_matches_reference(case):
    graph, loads, rounds = case
    assert_engines_agree(graph, loads, rounds, RotorRouter)


@given(case=scenario())
@settings(**COMMON_SETTINGS)
def test_rotor_router_star_matches_reference(case):
    graph, loads, rounds = case
    assert_engines_agree(graph, loads, rounds, RotorRouterStar)
