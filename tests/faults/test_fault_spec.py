"""FaultSpec: registry construction, round-trips, replica offsets."""

import pytest

from repro.faults import (
    FAULTS,
    FaultSchedule,
    FaultSpec,
    LinkFailures,
    as_fault_schedule,
)


def test_registry_lists_builtin_schedules():
    assert {"link_failures", "node_crashes", "message_drop"} <= set(
        FAULTS.names()
    )


def test_build_constructs_registered_schedule():
    schedule = FaultSpec("link_failures", {"rate": 0.2, "seed": 3}).build()
    assert isinstance(schedule, LinkFailures)
    assert schedule.rate == 0.2 and schedule.seed == 3


def test_build_offsets_seed_per_replica():
    spec = FaultSpec("message_drop", {"rate": 0.1, "seed": 10})
    assert spec.build(0).seed == 10
    assert spec.build(3).seed == 13
    # Seedless specs are replica-invariant.
    cut = FaultSpec("link_failures", {"mode": "cut"})
    assert cut.build(2).seed == cut.build(0).seed


def test_dict_round_trip_and_parse():
    spec = FaultSpec("node_crashes", {"rate": 0.05, "downtime": 3})
    assert FaultSpec.from_dict(spec.to_dict()) == spec
    assert FaultSpec.to_dict(FaultSpec("message_drop")) == {
        "name": "message_drop"
    }
    parsed = FaultSpec.parse('link_failures:{"rate": 0.4, "seed": 7}')
    assert parsed == FaultSpec("link_failures", {"rate": 0.4, "seed": 7})
    assert FaultSpec.parse("message_drop") == FaultSpec("message_drop")


def test_specs_are_hashable():
    a = FaultSpec("message_drop", {"rate": 0.1})
    b = FaultSpec("message_drop", {"rate": 0.1})
    assert len({a, b}) == 1


def test_unknown_name_raises():
    with pytest.raises(KeyError):
        FaultSpec("solar_flare").build()


def test_as_fault_schedule_coercions():
    assert as_fault_schedule(None) is None
    built = as_fault_schedule(FaultSpec("message_drop", {"seed": 1}), 2)
    assert built.seed == 3
    ready = LinkFailures(rate=0.5)
    assert as_fault_schedule(ready) is ready
    assert isinstance(ready, FaultSchedule)
    with pytest.raises(TypeError):
        as_fault_schedule("message_drop")
