"""Unit tests for fault-schedule semantics.

Differential parity lives in ``tests/differential/test_fault_parity.py``;
this file pins the *meaning* of each registered schedule — which links
die when, where crashed load goes, what drops do to the running total —
plus the structural validator and the engine-visible accounting.
"""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.faults import (
    FaultSpec,
    InvalidFault,
    LinkFailures,
    MessageDrop,
    NodeCrashes,
    RoundFaults,
    validate_round_faults,
)
from repro.graphs import families
from repro.graphs.datacenter import fat_tree


def _loads(graph, seed=2, high=100):
    rng = np.random.default_rng(seed)
    return rng.integers(0, high, graph.num_nodes).astype(np.int64)


def _directed_pairs(pairs):
    return {(int(u), int(p)) for u, p in pairs}


# -- link failures -----------------------------------------------------


def test_link_failures_dead_set_is_symmetric_and_real():
    graph = fat_tree(4)  # irregular: exercises the padding-port mask
    schedule = LinkFailures(rate=0.5, seed=1)
    schedule.start(graph, _loads(graph))
    saw_faults = False
    for t in range(1, 20):
        faults = schedule.round_state(t, _loads(graph))
        if faults is None:
            continue
        saw_faults = True
        validate_round_faults(faults, graph)
        assert faults.dropped.size == 0 and faults.load_delta is None
    assert saw_faults


def test_link_failures_rate_zero_is_free():
    graph = families.cycle(8)
    schedule = LinkFailures(rate=0.0)
    schedule.start(graph, _loads(graph))
    assert all(
        schedule.round_state(t, _loads(graph)) is None
        for t in range(1, 30)
    )
    assert schedule.summary() == {
        "edge_failures": 0,
        "failure_rounds": 0,
    }


def test_link_failures_rate_one_kills_every_link():
    graph = families.cycle(6)
    schedule = LinkFailures(rate=1.0, seed=4)
    schedule.start(graph, _loads(graph))
    faults = schedule.round_state(1, _loads(graph))
    # A cycle has n undirected edges -> 2n directed dead pairs.
    assert faults.dead.shape == (12, 2)
    validate_round_faults(faults, graph)


def test_link_failures_until_heals_the_fabric():
    graph = families.cycle(8)
    schedule = LinkFailures(rate=1.0, until=5, seed=0)
    schedule.start(graph, _loads(graph))
    for t in range(1, 12):
        faults = schedule.round_state(t, _loads(graph))
        assert (faults is not None) == (t <= 5)


def test_link_failures_cut_mode_severs_the_bisection_periodically():
    graph = families.cycle(8)
    schedule = LinkFailures(mode="cut", period=5, down=2)
    schedule.start(graph, _loads(graph))
    # On C_8 exactly two edges cross the [0,4) | [4,8) bisection:
    # (3,4) and (7,0).
    for t in range(1, 16):
        faults = schedule.round_state(t, _loads(graph))
        in_window = (t - 1) % 5 < 2
        assert (faults is not None) == in_window
        if faults is not None:
            validate_round_faults(faults, graph)
            nodes = {
                frozenset((int(u), int(graph.adjacency[u, p])))
                for u, p in faults.dead
            }
            assert nodes == {frozenset((3, 4)), frozenset((7, 0))}


def test_link_failures_restart_resets_the_stream():
    graph = families.cycle(10)
    schedule = LinkFailures(rate=0.4, seed=9)
    histories = []
    for _ in range(2):
        schedule.start(graph, _loads(graph))
        histories.append(
            [
                None
                if (f := schedule.round_state(t, _loads(graph))) is None
                else f.dead.tolist()
                for t in range(1, 15)
            ]
        )
    assert histories[0] == histories[1]


@pytest.mark.parametrize(
    "params",
    [
        {"rate": -0.1},
        {"rate": 1.5},
        {"mode": "weird"},
        {"period": 0},
        {"period": 3, "down": 4},
        {"until": -1},
    ],
)
def test_link_failures_rejects_bad_params(params):
    with pytest.raises(InvalidFault):
        LinkFailures(**params)


# -- node crashes ------------------------------------------------------


def test_scripted_crash_hands_load_to_live_neighbors():
    graph = families.cycle(6)
    loads = np.array([0, 10, 7, 0, 0, 0], dtype=np.int64)
    schedule = NodeCrashes(events=[[3, 1]], downtime=2)
    schedule.start(graph, loads)
    assert schedule.round_state(1, loads) is None
    assert schedule.round_state(2, loads) is None
    faults = schedule.round_state(3, loads)
    validate_round_faults(faults, graph)
    # 10 tokens split evenly over neighbors {0, 2}.
    delta = faults.load_delta
    assert delta[1] == -10 and delta[0] + delta[2] == 10
    assert abs(int(delta[0]) - int(delta[2])) <= 1
    assert int(delta.sum()) == 0  # handoff conserves
    # All of node 1's ports (both directions) are dead while down.
    dead = _directed_pairs(faults.dead)
    assert {(1, 0), (1, 1)} <= dead and len(dead) == 4
    # Down for `downtime` rounds: 3 and 4; recovered by 5.
    later = schedule.round_state(4, loads)
    assert later.load_delta is None
    assert _directed_pairs(later.dead) == dead
    assert schedule.round_state(5, loads) is None
    assert schedule.summary() == {
        "crashes": 1,
        "tokens_lost_at_crash": 0,
    }


def test_crash_with_lost_handoff_tracks_destroyed_tokens():
    graph = families.cycle(5)
    loads = np.array([3, 0, 8, 0, 0], dtype=np.int64)
    schedule = NodeCrashes(events=[[1, 2]], handoff="lost")
    schedule.start(graph, loads)
    faults = schedule.round_state(1, loads)
    assert faults.load_delta.tolist() == [0, 0, -8, 0, 0]
    assert schedule.summary()["tokens_lost_at_crash"] == 8


def test_simultaneous_crash_of_all_nodes_loses_everything():
    graph = families.cycle(4)
    loads = np.array([5, 6, 7, 8], dtype=np.int64)
    schedule = NodeCrashes(
        events=[[1, n] for n in range(4)], handoff="neighbors"
    )
    schedule.start(graph, loads)
    faults = schedule.round_state(1, loads)
    # No live neighbor anywhere: every handoff degrades to a loss.
    assert faults.load_delta.tolist() == [-5, -6, -7, -8]
    assert schedule.summary()["tokens_lost_at_crash"] == 26


def test_crashed_node_cannot_crash_again_while_down():
    graph = families.cycle(6)
    loads = _loads(graph)
    schedule = NodeCrashes(events=[[2, 3], [3, 3]], downtime=4)
    schedule.start(graph, loads)
    schedule.round_state(1, loads)
    schedule.round_state(2, loads)
    schedule.round_state(3, loads)
    assert schedule.summary()["crashes"] == 1


def test_node_crashes_rejects_bad_params():
    with pytest.raises(InvalidFault):
        NodeCrashes(rate=2.0)
    with pytest.raises(InvalidFault):
        NodeCrashes(downtime=0)
    with pytest.raises(InvalidFault):
        NodeCrashes(handoff="teleport")
    with pytest.raises(InvalidFault):
        NodeCrashes(events=[[0, 1]])
    with pytest.raises(InvalidFault):
        NodeCrashes(events=[[1, 2, 3]])


# -- message drop ------------------------------------------------------


def test_message_drop_emits_directed_real_pairs_only():
    graph = fat_tree(4)
    schedule = MessageDrop(rate=0.3, seed=5)
    schedule.start(graph, _loads(graph))
    saw = False
    for t in range(1, 15):
        faults = schedule.round_state(t, _loads(graph))
        if faults is None:
            continue
        saw = True
        validate_round_faults(faults, graph)
        assert faults.dead.size == 0 and faults.load_delta is None
    assert saw


def test_message_drop_reduces_engine_total_exactly():
    graph = families.cycle(10)
    loads = _loads(graph, seed=8)
    schedule = MessageDrop(rate=0.25, seed=6)
    result = Simulator(
        graph, make("send_floor"), loads, faults=schedule
    ).run(30)
    dropped = result.record.summary["tokens_dropped"]
    assert dropped > 0
    assert int(result.final_loads.sum()) == int(loads.sum()) - dropped
    assert result.record.summary["drop_events"] > 0


def test_engine_total_conserved_under_dead_links_and_handoff():
    graph = families.torus(4, 2)
    loads = _loads(graph, seed=9)
    for spec in (
        FaultSpec("link_failures", {"rate": 0.4, "seed": 2}),
        FaultSpec("node_crashes", {"rate": 0.1, "seed": 2}),
    ):
        result = Simulator(
            graph, make("send_floor"), loads, faults=spec
        ).run(40)
        summary = result.record.summary
        lost = summary.get("tokens_lost_at_crash", 0)
        assert summary["tokens_dropped"] == 0
        assert (
            int(result.final_loads.sum()) == int(loads.sum()) - lost
        )
        assert summary["fault_schedule"] == spec.name


# -- the structural validator ------------------------------------------


def _pair(u, p):
    return np.array([[u, p]], dtype=np.int64)


def test_validator_rejects_asymmetric_dead_pairs():
    graph = families.cycle(6)
    with pytest.raises(InvalidFault, match="edge reversal"):
        validate_round_faults(RoundFaults(dead=_pair(0, 0)), graph)


def test_validator_rejects_duplicates_and_overlap():
    graph = families.cycle(6)
    # One undirected edge off node 0, both directions.
    v = int(graph.adjacency[0, 0])
    q = int(graph.reverse_port[0, 0])
    dead = np.array([[0, 0], [v, q]], dtype=np.int64)
    validate_round_faults(RoundFaults(dead=dead), graph)
    with pytest.raises(InvalidFault, match="duplicates"):
        validate_round_faults(
            RoundFaults(dead=np.repeat(dead, 2, axis=0)), graph
        )
    with pytest.raises(InvalidFault, match="overlap"):
        validate_round_faults(
            RoundFaults(dead=dead, dropped=_pair(0, 0)), graph
        )


def test_validator_rejects_out_of_range_and_padding_ports():
    graph = families.cycle(6)
    with pytest.raises(InvalidFault, match="out of range"):
        validate_round_faults(RoundFaults(dropped=_pair(0, 9)), graph)
    padded = fat_tree(4)
    host = int(np.argmin(padded.true_degrees))
    pad_port = int(padded.true_degrees[host])
    assert pad_port < padded.total_degree
    with pytest.raises(InvalidFault, match="padding"):
        validate_round_faults(
            RoundFaults(dropped=_pair(host, pad_port)), padded
        )


def test_validator_rejects_bad_shapes_and_float_delta():
    graph = families.cycle(6)
    with pytest.raises(InvalidFault, match="shape"):
        validate_round_faults(
            RoundFaults(dead=np.zeros((2, 3), dtype=np.int64)), graph
        )
    with pytest.raises(InvalidFault, match="integer"):
        validate_round_faults(
            RoundFaults(load_delta=np.zeros(6)), graph
        )
    with pytest.raises(InvalidFault, match="shape"):
        validate_round_faults(
            RoundFaults(load_delta=np.zeros(4, dtype=np.int64)), graph
        )


def test_empty_round_faults():
    assert RoundFaults().is_empty()
    assert not RoundFaults(dead=_pair(0, 0)).is_empty()
    validate_round_faults(RoundFaults(), families.cycle(5))


# -- trusted-by-construction contract ----------------------------------


TRUSTED_CONFIGS = {
    "link_failures": [
        LinkFailures(rate=0.4, seed=3),
        LinkFailures(mode="cut", period=4, down=2),
    ],
    "node_crashes": [
        NodeCrashes(rate=0.3, downtime=3, seed=5),
        NodeCrashes(rate=0.3, downtime=3, handoff="lost", seed=5),
    ],
    "message_drop": [MessageDrop(rate=0.5, seed=7)],
}


def test_trusted_configs_cover_every_registered_schedule():
    from repro.faults import FAULTS

    assert set(TRUSTED_CONFIGS) == set(FAULTS.names())


@pytest.mark.parametrize(
    "schedule",
    [s for group in TRUSTED_CONFIGS.values() for s in group],
    ids=lambda s: s.name,
)
@pytest.mark.parametrize(
    "graph_factory",
    [lambda: families.cycle(9), lambda: fat_tree(4)],
    ids=["cycle", "fat_tree"],
)
def test_builtin_rounds_are_trusted_and_validator_clean(
    schedule, graph_factory
):
    """Engines skip re-validation for ``trusted`` rounds, so this test
    carries the proof obligation: every round a registered schedule
    emits must pass :func:`validate_round_faults` and be marked
    trusted."""
    graph = graph_factory()
    loads = _loads(graph)
    schedule.start(graph, loads)
    saw = 0
    for t in range(1, 40):
        faults = schedule.round_state(t, loads)
        if faults is None:
            continue
        saw += 1
        assert faults.trusted
        validate_round_faults(faults, graph)
    assert saw > 0


def test_engine_still_validates_untrusted_schedules():
    """A third-party schedule emitting malformed (asymmetric) dead
    pairs without the trusted mark must be caught by the engine's
    per-round validation."""

    class Lopsided(LinkFailures):
        def round_state(self, t, loads):
            return RoundFaults(dead=_pair(0, 0))  # no reverse pair

    graph = families.cycle(8)
    sim = Simulator(
        graph,
        make("send_floor"),
        _loads(graph, high=10),
        faults=Lopsided(rate=0.5, seed=1),
    )
    with pytest.raises(InvalidFault, match="edge reversal"):
        sim.run(3)
