"""Tests for the Theorem 4.2 construction (stateless Ω(d))."""

import numpy as np
import pytest

from repro.algorithms import make
from repro.core.engine import Simulator
from repro.lower_bounds import (
    build_stateless_instance,
    clique_is_complete,
    is_fixed_point,
)


@pytest.fixture(scope="module")
def instance():
    return build_stateless_instance(40, 10)


class TestConstruction:
    def test_clique_complete(self, instance):
        assert clique_is_complete(instance)

    def test_clique_loads(self, instance):
        loads = instance.initial_loads
        members = list(instance.clique)
        assert (loads[members] == len(members) - 1).all()
        others = np.delete(loads, members)
        assert (others == 0).all()

    def test_predicted_discrepancy_is_theta_d(self, instance):
        degree = instance.graph.degree
        assert instance.predicted_discrepancy == degree // 2 - 1


class TestFixedPoints:
    @pytest.mark.parametrize(
        "name",
        ["send_floor", "send_rounded", "arbitrary_rounding_fixed"],
    )
    def test_stateless_algorithms_stuck(self, instance, name):
        assert is_fixed_point(instance, make(name), rounds=12)

    def test_discrepancy_never_improves_for_send_floor(self, instance):
        simulator = Simulator(
            instance.graph,
            make("send_floor"),
            instance.initial_loads,
        )
        simulator.run(40)
        assert (
            min(simulator.discrepancy_history)
            == instance.predicted_discrepancy
        )

    def test_stateful_rotor_router_escapes(self, instance):
        """Contrast: the (stateful) rotor-router is NOT stuck."""
        assert not is_fixed_point(
            instance, make("rotor_router"), rounds=12
        )

    def test_odd_degree_variant(self):
        odd = build_stateless_instance(40, 9)
        assert clique_is_complete(odd)
        assert is_fixed_point(odd, make("send_floor"), rounds=8)
