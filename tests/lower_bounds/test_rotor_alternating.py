"""Tests for the Theorem 4.3 construction (rotor-router Ω(d·φ))."""

import pytest

from repro.core.engine import Simulator
from repro.core.metrics import discrepancy
from repro.graphs import families
from repro.graphs.errors import GraphConstructionError
from repro.lower_bounds import (
    build_rotor_alternating_instance,
    verify_period_two,
)


@pytest.fixture(
    scope="module", params=["cycle9", "cycle15", "petersen"]
)
def instance(request):
    graphs = {
        "cycle9": lambda: families.cycle(9, num_self_loops=0),
        "cycle15": lambda: families.cycle(15, num_self_loops=0),
        "petersen": lambda: families.petersen(num_self_loops=0),
    }
    return build_rotor_alternating_instance(graphs[request.param]())


class TestConstruction:
    def test_phi_matches_odd_girth(self, instance):
        odd_girth = instance.graph.odd_girth()
        assert 2 * instance.phi + 1 == odd_girth

    def test_flows_sum_to_2l(self, instance):
        """f_0(v1,v2) + f_0(v2,v1) = 2L on every original edge."""
        graph = instance.graph
        even = instance.even_flows
        for node in range(graph.num_nodes):
            for port, neighbor in enumerate(graph.neighbors(node)):
                back = list(graph.neighbors(neighbor)).index(node)
                assert (
                    even[node, port] + even[neighbor, back]
                    == 2 * instance.base_load
                )

    def test_odd_flows_are_reversed_even_flows(self, instance):
        graph = instance.graph
        for node in range(graph.num_nodes):
            for port, neighbor in enumerate(graph.neighbors(node)):
                back = list(graph.neighbors(neighbor)).index(node)
                assert (
                    instance.odd_flows[node, port]
                    == instance.even_flows[neighbor, back]
                )

    def test_flows_nonnegative(self, instance):
        assert instance.even_flows.min() >= 0
        assert instance.odd_flows.min() >= 0

    def test_per_node_round_fair(self, instance):
        """Scheduled flows take at most two consecutive values per node."""
        degree = instance.graph.degree
        flows = instance.even_flows[:, :degree]
        spread = flows.max(axis=1) - flows.min(axis=1)
        assert spread.max() <= 1

    def test_root_load_swings_d_phi(self, instance):
        graph = instance.graph
        root = instance.root
        even_load = instance.even_flows[root].sum()
        odd_load = instance.odd_flows[root].sum()
        assert even_load - odd_load == 2 * graph.degree * instance.phi


class TestDynamics:
    def test_period_two_verified_by_real_run(self, instance):
        assert verify_period_two(instance, cycles=6)

    def test_discrepancy_never_below_d_phi(self, instance):
        simulator = Simulator(
            instance.graph, instance.balancer, instance.initial_loads
        )
        simulator.run(24)
        assert (
            min(simulator.discrepancy_history)
            >= instance.predicted_discrepancy
        )

    def test_initial_discrepancy_about_2n_on_cycles(self):
        graph = families.cycle(21, num_self_loops=0)
        instance = build_rotor_alternating_instance(graph)
        assert discrepancy(instance.initial_loads) >= 21  # Ω(n)


class TestValidation:
    def test_rejects_bipartite(self):
        graph = families.cycle(8, num_self_loops=0)
        with pytest.raises(GraphConstructionError, match="bipartite"):
            build_rotor_alternating_instance(graph)

    def test_rejects_self_loops(self):
        graph = families.cycle(9, num_self_loops=2)
        with pytest.raises(GraphConstructionError, match="WITHOUT"):
            build_rotor_alternating_instance(graph)

    def test_rejects_small_base_load(self):
        graph = families.cycle(9, num_self_loops=0)
        with pytest.raises(GraphConstructionError, match="base_load"):
            build_rotor_alternating_instance(graph, base_load=1)

    def test_larger_base_load_also_alternates(self):
        graph = families.cycle(9, num_self_loops=0)
        instance = build_rotor_alternating_instance(graph, base_load=10)
        assert verify_period_two(instance, cycles=4)
