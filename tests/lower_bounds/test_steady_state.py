"""Tests for the Theorem 4.1 construction (Ω(d·diam) steady state)."""

import numpy as np
import pytest

from repro.core.engine import Simulator
from repro.graphs import families
from repro.lower_bounds import (
    build_steady_state_instance,
    exchange_fairness_error,
    per_node_flow_spread,
)


@pytest.fixture(
    scope="module",
    params=["cycle", "torus", "hypercube"],
)
def instance(request):
    if request.param == "cycle":
        graph = families.cycle(16, num_self_loops=0)
    elif request.param == "torus":
        graph = families.torus(4, 2, num_self_loops=0)
    else:
        graph = families.hypercube(4, num_self_loops=0)
    return build_steady_state_instance(graph)


class TestConstruction:
    def test_flows_are_min_distance(self, instance):
        graph = instance.graph
        labels = graph.distances_from(instance.source)
        flows = instance.balancer._schedule[0]
        for node in range(graph.num_nodes):
            for port, neighbor in enumerate(graph.neighbors(node)):
                assert flows[node, port] == min(
                    labels[node], labels[neighbor]
                )

    def test_round_fair_spread(self, instance):
        """Within one node, edge flows differ by at most 1."""
        assert per_node_flow_spread(instance) <= 1

    def test_exchange_fairness(self, instance):
        """Net exchange deviates from continuous by < 1 per edge."""
        assert exchange_fairness_error(instance) < 1.0

    def test_source_has_zero_load(self, instance):
        assert instance.initial_loads[instance.source] == 0

    def test_discrepancy_at_least_d_diam_minus_one(self, instance):
        assert (
            instance.actual_discrepancy >= instance.predicted_discrepancy
        )


class TestDynamics:
    def test_loads_invariant_forever(self, instance):
        simulator = Simulator(
            instance.graph,
            instance.balancer,
            instance.initial_loads,
            record_history=False,
        )
        for _ in range(50):
            after = simulator.step()
            np.testing.assert_array_equal(after, instance.initial_loads)

    def test_discrepancy_never_improves(self, instance):
        simulator = Simulator(
            instance.graph, instance.balancer, instance.initial_loads
        )
        simulator.run(30)
        assert (
            min(simulator.discrepancy_history)
            >= instance.predicted_discrepancy
        )
