"""Unit tests for the scheduled fixed-flow balancer."""

import numpy as np
import pytest

from repro.core.engine import Simulator
from repro.core.errors import BindingError
from repro.graphs import families
from repro.lower_bounds import FixedFlowBalancer


def constant_schedule(graph, value):
    matrix = np.full(
        (graph.num_nodes, graph.total_degree), value, dtype=np.int64
    )
    matrix[:, graph.degree:] = 0
    return matrix


class TestScheduling:
    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            FixedFlowBalancer([])

    def test_shape_validated_at_bind(self):
        graph = families.cycle(4, num_self_loops=0)
        bad = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(BindingError, match="shape"):
            FixedFlowBalancer([bad]).bind(graph)

    def test_negative_flows_rejected(self):
        graph = families.cycle(4, num_self_loops=0)
        bad = np.full((4, 2), -1, dtype=np.int64)
        with pytest.raises(BindingError, match="negative"):
            FixedFlowBalancer([bad]).bind(graph)

    def test_schedule_cycles(self):
        graph = families.cycle(4, num_self_loops=0)
        a = constant_schedule(graph, 1)
        b = constant_schedule(graph, 2)
        balancer = FixedFlowBalancer([a, b]).bind(graph)
        assert balancer.period == 2
        loads = np.full(4, 10, dtype=np.int64)
        np.testing.assert_array_equal(balancer.sends(loads, 1), a)
        np.testing.assert_array_equal(balancer.sends(loads, 2), b)
        np.testing.assert_array_equal(balancer.sends(loads, 3), a)

    def test_constant_flow_is_steady_state(self):
        graph = families.cycle(6, num_self_loops=0)
        flows = constant_schedule(graph, 3)
        balancer = FixedFlowBalancer([flows])
        loads = flows.sum(axis=1)
        simulator = Simulator(graph, balancer, loads)
        for _ in range(5):
            after = simulator.step()
            np.testing.assert_array_equal(after, loads)

    def test_overdraw_still_guarded(self):
        graph = families.cycle(4, num_self_loops=0)
        flows = constant_schedule(graph, 5)
        balancer = FixedFlowBalancer([flows])
        loads = np.ones(4, dtype=np.int64)
        simulator = Simulator(graph, balancer, loads)
        from repro.core.errors import NegativeLoadError

        with pytest.raises(NegativeLoadError):
            simulator.step()
