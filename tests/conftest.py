"""Shared fixtures: small graphs reused across the suite."""

from __future__ import annotations

import pytest

from repro.graphs import families


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "regenerate the golden driver-output fixtures under "
            "tests/golden/ instead of comparing against them (use "
            "after an intentional numbers change; review the diff!)"
        ),
    )


@pytest.fixture(scope="session")
def expander24():
    """Small random 4-regular graph with d° = d self-loops."""
    return families.random_regular(24, 4, seed=3)


@pytest.fixture(scope="session")
def cycle12():
    return families.cycle(12)


@pytest.fixture(scope="session")
def odd_cycle9():
    return families.cycle(9)


@pytest.fixture(scope="session")
def torus9():
    return families.torus(3, 2)


@pytest.fixture(scope="session")
def hypercube16():
    return families.hypercube(4)


@pytest.fixture(scope="session")
def petersen_graph():
    return families.petersen()
