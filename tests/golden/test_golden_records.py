"""Golden-record regression corpus for the experiment drivers.

Each case runs a small, fully deterministic configuration of one
driver and pins its *entire* JSON output — rows, notes, metadata —
byte-for-byte against a committed fixture.  Engine refactors, executor
changes, and probe reworks must reproduce these numbers exactly;
anything that drifts a published value fails loudly here.

Refreshing after an **intentional** numbers change:

    python -m pytest tests/golden --update-golden
    git diff tests/golden/   # review every changed value!

The fixtures deliberately exercise both suite-based drivers (E1-E4,
which ride the repro.exec executor) and direct-Simulator drivers
(E6, E12).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

from repro.experiments import (  # noqa: E402
    DatacenterServingConfig,
    FaultRecoveryConfig,
    LowerBoundConfig,
    Table1Config,
    Theorem23Config,
    Theorem33Config,
    TopologyChurnConfig,
    run_cycle_sweep,
    run_datacenter_serving,
    run_expander_sweep,
    run_fault_recovery,
    run_minimal_selfloop_sweep,
    run_potential_monotonicity,
    run_steady_state,
    run_table1,
    run_topology_churn,
)

GOLDEN_DIR = Path(__file__).parent

_THEOREM23 = dict(
    expander_sizes=(32, 64),
    expander_degree=4,
    cycle_sizes=(9, 17),
    tokens_per_node=16,
)

GOLDEN_CASES = {
    "E1": lambda: run_table1(
        Table1Config(n=32, degree=4, tokens_per_node=16)
    ),
    "E2": lambda: run_expander_sweep(Theorem23Config(**_THEOREM23)),
    "E3": lambda: run_cycle_sweep(Theorem23Config(**_THEOREM23)),
    "E4": lambda: run_minimal_selfloop_sweep(
        Theorem23Config(**_THEOREM23)
    ),
    "E6": lambda: run_steady_state(LowerBoundConfig()),
    "E12": lambda: run_potential_monotonicity(
        Theorem33Config(n=32, degree=4, tokens_per_node=16),
        rounds=120,
    ),
    "E16": lambda: run_datacenter_serving(
        DatacenterServingConfig(
            fat_tree_k=2,
            leaves=3,
            spines=2,
            hosts_per_leaf=2,
            rounds=60,
            tail_window=15,
            offered_loads=(1.0, 4.0),
            traffic_models=("poisson_arrivals", "hotspot_shift"),
            algorithms=("send_floor",),
            replicas=2,
        )
    ),
    "E17": lambda: run_fault_recovery(
        FaultRecoveryConfig(
            n=16,
            fat_tree_k=2,
            leaves=3,
            spines=2,
            hosts_per_leaf=2,
            rounds=60,
            tail_window=15,
            fail_rates=(0.1,),
            algorithms=("send_floor",),
            replicas=2,
        )
    ),
    "E18": lambda: run_topology_churn(
        TopologyChurnConfig(
            n=16,
            fat_tree_k=2,
            leaves=3,
            spines=2,
            hosts_per_leaf=2,
            rounds=60,
            tail_window=15,
            churn_rates=(0.1,),
            downtime=4,
            algorithms=("send_floor", "rotor_router"),
            replicas=2,
        )
    ),
}


def _canonical(result) -> dict:
    # to_json is the driver's published machine-readable form; parsing
    # it back normalizes python scalars exactly the way consumers see
    # them.
    return json.loads(result.to_json())


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN_CASES))
def test_driver_output_matches_golden(experiment_id, request):
    fixture = GOLDEN_DIR / f"{experiment_id}.json"
    produced = _canonical(GOLDEN_CASES[experiment_id]())
    if request.config.getoption("--update-golden"):
        fixture.write_text(
            json.dumps(produced, indent=2, sort_keys=True) + "\n"
        )
        return
    assert fixture.exists(), (
        f"missing golden fixture {fixture}; generate it with "
        "`python -m pytest tests/golden --update-golden`"
    )
    expected = json.loads(fixture.read_text())
    assert produced == expected, (
        f"{experiment_id} driver output drifted from its golden "
        f"fixture; if the change is intentional, refresh with "
        "`python -m pytest tests/golden --update-golden` and review "
        "the diff"
    )


def test_suite_driver_golden_survives_parallel_execution(tmp_path):
    """E2 through the 2-worker executor + cache == its golden numbers.

    The strongest drift guard: the same driver, fanned out over a
    process pool with a result cache attached, must reproduce the
    committed fixture byte-for-byte — twice (the second pass replays
    entirely from the cache).
    """
    from repro.exec import configure

    fixture = GOLDEN_DIR / "E2.json"
    expected = json.loads(fixture.read_text())
    with configure(workers=2, cache=tmp_path / "cache"):
        assert _canonical(GOLDEN_CASES["E2"]()) == expected
        assert _canonical(GOLDEN_CASES["E2"]()) == expected


def test_golden_corpus_is_complete():
    committed = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert committed == set(GOLDEN_CASES), (
        "golden fixtures and GOLDEN_CASES disagree: "
        f"fixtures={sorted(committed)}, cases={sorted(GOLDEN_CASES)}"
    )
