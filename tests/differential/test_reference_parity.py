"""Differential suite: fast engines vs the naive reference, with dynamics.

Every injected round executed by the production engines (dense and
structured) must match :class:`ReferenceDynamicSimulator` — per-token
Python loops with explicit adversary-first phase ordering — load vector
for load vector, round for round.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.dynamics import DynamicsSpec
from repro.graphs import families
from tests.differential.reference_dynamics import ReferenceDynamicSimulator
from tests.differential.strategies import dynamics_specs
from tests.helpers import balancing_graphs, load_vectors

FAMILIES = {
    "cycle": lambda: families.cycle(15),
    "torus": lambda: families.torus(4, 2),
    "hypercube": lambda: families.hypercube(4),
    "random_regular": lambda: families.random_regular(20, 4, seed=9),
}

INJECTOR_CASES = [
    DynamicsSpec("constant_rate", {"rate": 7, "seed": 5}),
    DynamicsSpec(
        "constant_rate", {"rate": 5, "placement": "round_robin"}
    ),
    DynamicsSpec("batch_arrivals", {"tokens": 40, "period": 6, "seed": 2}),
    DynamicsSpec("adversarial_peak", {"rate": 9}),
    DynamicsSpec("random_churn", {"rate": 12, "seed": 11}),
    DynamicsSpec("random_churn", {"rate": 6, "refill": False, "seed": 3}),
    DynamicsSpec(
        "scripted",
        {"events": [[1, 0, 30], [4, 7, 12], [4, 3, 5], [20, 2, 50]]},
    ),
]


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize(
    "spec", INJECTOR_CASES, ids=lambda s: f"{s.name}:{s.params}"
)
def test_dense_matches_reference(family, spec):
    """Round-for-round parity of the dense engine on every family."""
    graph = FAMILIES[family]()
    loads = np.random.default_rng(17).integers(
        0, 200, graph.num_nodes
    ).astype(np.int64)
    fast = Simulator(
        graph,
        make("send_floor"),
        loads,
        dynamics=spec.build(),
        engine="dense",
    )
    slow = ReferenceDynamicSimulator(
        graph, make("send_floor"), loads, injector=spec.build()
    )
    for _ in range(30):
        fast.step()
        slow.step()
        assert fast.loads.tolist() == slow.loads


@pytest.mark.parametrize(
    "algorithm", ["send_floor", "send_rounded", "rotor_router"]
)
def test_structured_matches_reference(algorithm):
    """The matrix-free engine against the per-token loops."""
    graph = families.torus(4, 2)
    loads = np.random.default_rng(23).integers(0, 150, 16).astype(
        np.int64
    )
    spec = DynamicsSpec("random_churn", {"rate": 10, "seed": 4})
    fast = Simulator(
        graph,
        make(algorithm),
        loads,
        dynamics=spec.build(),
        engine="structured",
    )
    slow = ReferenceDynamicSimulator(
        graph, make(algorithm), loads, injector=spec.build()
    )
    for _ in range(40):
        fast.step()
        slow.step()
        assert fast.loads.tolist() == slow.loads


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_random_cases_match_reference(data):
    """Hypothesis: random graph × loads × injector spec × engine."""
    graph = data.draw(balancing_graphs(max_self_loops=4))
    algorithm = data.draw(
        st.sampled_from(["send_floor", "send_rounded", "rotor_router"])
    )
    if (
        algorithm == "send_rounded"
        and graph.total_degree < 2 * graph.degree
    ):
        algorithm = "send_floor"
    loads = data.draw(load_vectors(graph.num_nodes))
    rounds = data.draw(st.integers(1, 15))
    spec = data.draw(dynamics_specs(graph.num_nodes, rounds))
    engine = data.draw(st.sampled_from(["dense", "structured"]))
    fast = Simulator(
        graph,
        make(algorithm),
        loads,
        dynamics=spec.build(),
        engine=engine,
    )
    slow = ReferenceDynamicSimulator(
        graph, make(algorithm), loads, injector=spec.build()
    )
    for _ in range(rounds):
        fast.step()
        slow.step()
        assert fast.loads.tolist() == slow.loads
    assert fast.total_tokens == sum(slow.loads)
