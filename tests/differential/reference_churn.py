"""A deliberately naive reference implementation of *churned* rounds.

The production engines execute topology churn incrementally: in-place
edge add/drop on a :class:`~repro.graphs.mutable.MutableBalancingGraph`
with reverse-port repair, plus a dirty-row balancer refresh (see
:mod:`repro.topology.schedules`).  This module is the differential
anchor for all of that machinery: each round is executed with per-node,
per-port Python loops and a **full rebuild from scratch** —

1. the topology schedule moves first: ``round_events`` fires, and the
   event batch is applied to plain Python neighbor lists (leaves with
   divmod load handoff, then joins, then edge drops, then edge adds);
2. the entire graph is rebuilt from the neighbor lists via
   ``MutableBalancingGraph.from_neighbor_lists`` — no incremental
   repair, every invariant re-validated — and the balancer is refreshed
   through the *full* (``dirty=None``) path;
3. dynamics injection (optional) is added node by node;
4. the balancer's sends are applied one port at a time (padding ports
   bounce straight back to the sender);
5. conservation is asserted exactly: churned balancing moves tokens,
   it never creates or destroys them.

The layout discipline is mirrored bit for bit: an added edge *appends*
to the neighbor list and a dropped edge is *swap-removed* (the last
entry moves into the hole).  Port numbering therefore matches the
incremental engines exactly, which is what makes rotor-router
trajectories — whose sends depend on port order — identical between
the two execution strategies.

The reference owns its own :class:`~repro.topology.schedules.\
TopologySchedule` instance built from the same spec as the engine under
test.  Because ``round_events`` is called exactly once per round with
the same round numbers, both instances consume identical RNG streams
and produce identical event histories.

Nothing here is clever, which is the point: correctness is obvious by
inspection, so any divergence from the fast engines is a fast-engine
bug.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import Balancer
from repro.core.errors import NegativeLoadError
from repro.graphs.mutable import MutableBalancingGraph


class ReferenceChurnSimulator:
    """Slow, obviously-correct churned-round execution (tests only)."""

    def __init__(
        self,
        graph,
        balancer: Balancer,
        initial_loads: np.ndarray,
        topology,
        injector=None,
    ) -> None:
        self.d_max = graph.degree
        self.num_self_loops = graph.num_self_loops
        true_degrees = getattr(graph, "true_degrees", None)
        self.neighbor_lists: list[list[int]] = []
        for u in range(graph.num_nodes):
            deg = (
                self.d_max
                if true_degrees is None
                else int(true_degrees[u])
            )
            self.neighbor_lists.append(
                [int(v) for v in graph.adjacency[u, :deg]]
            )
        self.active = [True] * graph.num_nodes
        self.graph = self._rebuild()
        self.balancer = balancer.bind(self.graph)
        self.topology = topology
        self.injector = injector
        self.loads = [int(v) for v in initial_loads]
        self.round = 1
        topology.start(
            self.graph, np.asarray(initial_loads, dtype=np.int64)
        )
        if injector is not None:
            injector.start(
                self.graph, np.asarray(initial_loads, dtype=np.int64)
            )

    # ------------------------------------------------------------------
    # Naive topology application (python lists, full rebuild)
    # ------------------------------------------------------------------

    def _rebuild(self) -> MutableBalancingGraph:
        return MutableBalancingGraph.from_neighbor_lists(
            self.neighbor_lists,
            self.d_max,
            self.num_self_loops,
            active=self.active,
        )

    def _swap_remove(self, u: int, v: int) -> None:
        """Drop ``v`` from ``u``'s list the way the engine vacates a
        port: the last entry moves into the hole."""
        row = self.neighbor_lists[u]
        p = row.index(v)
        last = len(row) - 1
        if p != last:
            row[p] = row[last]
        row.pop()

    def _drop_edge(self, u: int, v: int) -> None:
        assert v in self.neighbor_lists[u], (
            f"reference asked to drop absent edge ({u}, {v})"
        )
        self._swap_remove(u, v)
        self._swap_remove(v, u)

    def _add_edge(self, u: int, v: int) -> None:
        assert u != v and v not in self.neighbor_lists[u]
        assert self.active[u] and self.active[v]
        self.neighbor_lists[u].append(v)
        self.neighbor_lists[v].append(u)
        assert len(self.neighbor_lists[u]) <= self.d_max
        assert len(self.neighbor_lists[v]) <= self.d_max

    def _apply_events(self, events) -> None:
        # Leaves: split the departing load over live neighbors in port
        # order (remainder dealt first), then sever every edge.
        for u in events.leaves:
            u = int(u)
            targets = list(self.neighbor_lists[u])
            amount = self.loads[u]
            if targets and amount:
                share, extra = divmod(amount, len(targets))
                for i, v in enumerate(targets):
                    self.loads[v] += share + (1 if i < extra else 0)
                self.loads[u] = 0
            for v in targets:
                self._drop_edge(u, v)
            self.active[u] = False
        for node, neighbors in events.joins:
            node = int(node)
            assert not self.active[node]
            assert not self.neighbor_lists[node]
            self.active[node] = True
            for v in neighbors:
                self._add_edge(node, int(v))
        for u, v in events.edge_drops:
            self._drop_edge(int(u), int(v))
        for u, v in events.edge_adds:
            self._add_edge(int(u), int(v))

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def step(self) -> list[int]:
        # Phase 1: topology events, then a full rebuild from scratch.
        events = self.topology.round_events(
            self.round, np.array(self.loads, dtype=np.int64)
        )
        if events is not None and not events.is_empty():
            self._apply_events(events)
            self.graph = self._rebuild()
            self.graph.check_consistency()
            # Full refresh (dirty=None): the rebuilt arrays replace the
            # balancer's cached topology wholesale, rotors untouched.
            self.balancer.refresh_topology(self.graph)
        graph = self.graph
        # Phase 2: dynamics injection.
        if self.injector is not None:
            delta = self.injector.delta(
                self.round, np.array(self.loads, dtype=np.int64)
            )
            for node in range(graph.num_nodes):
                self.loads[node] += int(delta[node])
                assert self.loads[node] >= 0
        total_before_balancing = sum(self.loads)
        # Phase 3: sends applied one port at a time.  A padding port's
        # target is the node itself, so its tokens bounce in place —
        # exactly the engines' gather semantics.
        loads_array = np.array(self.loads, dtype=np.int64)
        sends = self.balancer.sends(loads_array, self.round)
        new_loads = [0] * graph.num_nodes
        for node in range(graph.num_nodes):
            outgoing = int(sends[node].sum())
            remainder = self.loads[node] - outgoing
            if remainder < 0 and not self.balancer.allows_negative:
                raise NegativeLoadError(
                    f"node {node} overdrew in reference engine"
                )
            new_loads[node] += remainder
        for node in range(graph.num_nodes):
            for port in range(graph.total_degree):
                value = int(sends[node, port])
                target = graph.port_target(node, port)
                new_loads[target] += value
        assert sum(new_loads) == total_before_balancing, (
            "churned balancing must conserve tokens exactly"
        )
        self.loads = new_loads
        self.round += 1
        return new_loads

    def run(self, rounds: int) -> list[int]:
        for _ in range(rounds):
            self.step()
        return self.loads
