"""Hypothesis strategies for dynamic-workload event streams.

Graph and load strategies live in ``tests.helpers``; this module adds
the dynamics axis: random scripted event streams and random
:class:`~repro.dynamics.DynamicsSpec`\\ s over every registered
injector.  Specs are generated (rather than raw injector instances) so
each drawn case also exercises the registry construction path the
scenario layer uses.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.dynamics import DynamicsSpec


@st.composite
def event_streams(draw, n: int, max_rounds: int, max_amount: int = 40):
    """Scripted ``[round, node, amount]`` arrival events.

    Generated streams are arrival-only (nonnegative amounts): a random
    departure is usually an overdraw, which the engine correctly
    rejects — targeted departure cases are written deterministically in
    the suites instead.
    """
    count = draw(st.integers(0, 12))
    return [
        [
            draw(st.integers(1, max_rounds)),
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, max_amount)),
        ]
        for _ in range(count)
    ]


@st.composite
def dynamics_specs(draw, n: int, max_rounds: int):
    """A random spec over every registered built-in injector."""
    kind = draw(
        st.sampled_from(
            [
                "constant_rate",
                "batch_arrivals",
                "adversarial_peak",
                "random_churn",
                "scripted",
            ]
        )
    )
    seed = draw(st.integers(0, 1000))
    if kind == "constant_rate":
        return DynamicsSpec(
            kind,
            {
                "rate": draw(st.integers(0, 20)),
                "placement": draw(
                    st.sampled_from(["random", "round_robin"])
                ),
                "seed": seed,
            },
        )
    if kind == "batch_arrivals":
        params = {
            "tokens": draw(st.integers(0, 60)),
            "period": draw(st.integers(1, 7)),
            "seed": seed,
        }
        if draw(st.booleans()):
            params["node"] = draw(st.integers(0, n - 1))
        return DynamicsSpec(kind, params)
    if kind == "adversarial_peak":
        return DynamicsSpec(
            kind,
            {
                "rate": draw(st.integers(0, 20)),
                "period": draw(st.integers(1, 3)),
            },
        )
    if kind == "random_churn":
        return DynamicsSpec(
            kind,
            {
                "rate": draw(st.integers(0, 30)),
                "refill": draw(st.booleans()),
                "seed": seed,
            },
        )
    return DynamicsSpec(
        "scripted", {"events": draw(event_streams(n, max_rounds))}
    )
