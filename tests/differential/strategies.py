"""Hypothesis strategies for dynamic-workload event streams.

Graph and load strategies live in ``tests.helpers``; this module adds
the dynamics axis: random scripted event streams and random
:class:`~repro.dynamics.DynamicsSpec`\\ s over every registered
injector.  Specs are generated (rather than raw injector instances) so
each drawn case also exercises the registry construction path the
scenario layer uses.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.dynamics import DynamicsSpec
from repro.faults import FaultSpec
from repro.topology import TopologySpec


@st.composite
def event_streams(draw, n: int, max_rounds: int, max_amount: int = 40):
    """Scripted ``[round, node, amount]`` arrival events.

    Generated streams are arrival-only (nonnegative amounts): a random
    departure is usually an overdraw, which the engine correctly
    rejects — targeted departure cases are written deterministically in
    the suites instead.
    """
    count = draw(st.integers(0, 12))
    return [
        [
            draw(st.integers(1, max_rounds)),
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, max_amount)),
        ]
        for _ in range(count)
    ]


@st.composite
def dynamics_specs(draw, n: int, max_rounds: int):
    """A random spec over every registered built-in injector."""
    kind = draw(
        st.sampled_from(
            [
                "constant_rate",
                "batch_arrivals",
                "adversarial_peak",
                "random_churn",
                "scripted",
            ]
        )
    )
    seed = draw(st.integers(0, 1000))
    if kind == "constant_rate":
        return DynamicsSpec(
            kind,
            {
                "rate": draw(st.integers(0, 20)),
                "placement": draw(
                    st.sampled_from(["random", "round_robin"])
                ),
                "seed": seed,
            },
        )
    if kind == "batch_arrivals":
        params = {
            "tokens": draw(st.integers(0, 60)),
            "period": draw(st.integers(1, 7)),
            "seed": seed,
        }
        if draw(st.booleans()):
            params["node"] = draw(st.integers(0, n - 1))
        return DynamicsSpec(kind, params)
    if kind == "adversarial_peak":
        return DynamicsSpec(
            kind,
            {
                "rate": draw(st.integers(0, 20)),
                "period": draw(st.integers(1, 3)),
            },
        )
    if kind == "random_churn":
        return DynamicsSpec(
            kind,
            {
                "rate": draw(st.integers(0, 30)),
                "refill": draw(st.booleans()),
                "seed": seed,
            },
        )
    return DynamicsSpec(
        "scripted", {"events": draw(event_streams(n, max_rounds))}
    )


@st.composite
def fault_specs(draw, n: int, max_rounds: int):
    """A random spec over every registered built-in fault schedule."""
    kind = draw(
        st.sampled_from(
            ["link_failures", "node_crashes", "message_drop"]
        )
    )
    seed = draw(st.integers(0, 1000))
    until = draw(
        st.one_of(st.none(), st.integers(1, max_rounds))
    )
    if kind == "link_failures":
        mode = draw(st.sampled_from(["random", "cut"]))
        params = {"mode": mode, "seed": seed}
        if mode == "random":
            params["rate"] = draw(st.floats(0.0, 0.6))
        else:
            period = draw(st.integers(2, 8))
            params["period"] = period
            params["down"] = draw(st.integers(1, min(4, period)))
        if until is not None:
            params["until"] = until
        return FaultSpec(kind, params)
    if kind == "node_crashes":
        params = {
            "rate": draw(st.floats(0.0, 0.25)),
            "downtime": draw(st.integers(1, 6)),
            "handoff": draw(st.sampled_from(["neighbors", "lost"])),
            "seed": seed,
        }
        if draw(st.booleans()):
            params["events"] = [
                [
                    draw(st.integers(1, max_rounds)),
                    draw(st.integers(0, n - 1)),
                ]
                for _ in range(draw(st.integers(0, 3)))
            ]
        if until is not None:
            params["until"] = until
        return FaultSpec(kind, params)
    params = {"rate": draw(st.floats(0.0, 0.4)), "seed": seed}
    if until is not None:
        params["until"] = until
    return FaultSpec("message_drop", params)


@st.composite
def topology_specs(draw, n: int, max_rounds: int):
    """A random spec over every registered topology schedule.

    Scripted streams are restricted to leave/rejoin pairs on distinct
    nodes — random scripted edge events would need knowledge of the
    concrete edge set to stay valid, and the deterministic suites
    cover those explicitly per family instead.
    """
    kind = draw(
        st.sampled_from(
            [
                "edge_churn",
                "node_join_leave",
                "expander_rewire",
                "scripted",
            ]
        )
    )
    seed = draw(st.integers(0, 1000))
    until = draw(st.one_of(st.none(), st.integers(1, max_rounds)))
    if kind == "edge_churn":
        mode = draw(st.sampled_from(["random", "cut"]))
        params = {"mode": mode, "seed": seed}
        if mode == "random":
            params["rate"] = draw(st.floats(0.0, 0.5))
            params["downtime"] = draw(st.integers(1, 6))
        else:
            period = draw(st.integers(1, 8))
            params["period"] = period
            params["down"] = draw(st.integers(0, period))
        if until is not None:
            params["until"] = until
        return TopologySpec(kind, params)
    if kind == "node_join_leave":
        params = {
            "rate": draw(st.floats(0.0, 0.3)),
            "rejoin_after": draw(st.integers(1, 6)),
            "seed": seed,
        }
        if until is not None:
            params["until"] = until
        return TopologySpec(kind, params)
    if kind == "expander_rewire":
        params = {"swaps": draw(st.integers(0, 3)), "seed": seed}
        if until is not None:
            params["until"] = until
        return TopologySpec(kind, params)
    nodes = draw(
        st.lists(
            st.integers(0, n - 1),
            max_size=min(3, n),
            unique=True,
        )
    )
    events = []
    for node in nodes:
        gone = draw(st.integers(1, max_rounds))
        events.append(["leave", gone, node])
        if draw(st.booleans()) and gone < max_rounds:
            # Rejoin isolated: wiring back to original neighbors would
            # need the edge set, but an empty join is always legal.
            back = draw(st.integers(gone + 1, max_rounds))
            events.append(["join", back, node, []])
    return TopologySpec("scripted", {"events": events})
