"""Differential suite: dense == structured == batched == reference
under topology churn.

The acceptance property of the dynamic-topology subsystem: with a
topology schedule attached, every execution path — looped dense,
looped structured, the stacked batch runner, the scenario executors,
``run_until``, with and without probes — produces bit-identical load
trajectories replica-for-replica, and all of them match the
rebuild-from-scratch reference implementation in
:mod:`tests.differential.reference_churn`.

Coverage spans every registered topology schedule on the four core
families *and* both datacenter fabrics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.monitors import LoadBoundsMonitor
from repro.dynamics import DynamicsSpec
from repro.graphs import families
from repro.graphs.datacenter import fat_tree, leaf_spine
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)
from repro.scenarios.batch import BatchRunner
from repro.topology import TOPOLOGIES, TopologySpec
from tests.differential.reference_churn import ReferenceChurnSimulator
from tests.differential.strategies import topology_specs
from tests.helpers import balancing_graphs, load_vectors

FAMILIES = {
    "cycle": lambda: families.cycle(15),
    "torus": lambda: families.torus(4, 2),
    "hypercube": lambda: families.hypercube(4),
    "random_regular": lambda: families.random_regular(20, 4, seed=9),
    "fat_tree": lambda: fat_tree(4),
    "leaf_spine": lambda: leaf_spine(4, 2, 3),
}


def _scripted_spec(graph) -> TopologySpec:
    """A per-graph scripted stream touching all four event kinds."""
    degrees = getattr(graph, "true_degrees", None)
    v = int(graph.adjacency[0, 0])
    w = graph.num_nodes - 1
    w_deg = graph.degree if degrees is None else int(degrees[w])
    w_neighbors = [int(x) for x in graph.adjacency[w, :w_deg]]
    return TopologySpec(
        "scripted",
        {
            "events": [
                ["drop", 2, 0, v],
                ["add", 5, 0, v],
                ["leave", 8, w],
                ["join", 12, w, w_neighbors],
            ]
        },
    )


# Values are ``graph -> TopologySpec`` factories: scripted streams
# must reference the concrete edge set, the rest ignore the graph.
TOPOLOGY_VARIANTS = {
    "edge_churn/random": lambda graph: TopologySpec(
        "edge_churn", {"rate": 0.12, "downtime": 4, "seed": 3}
    ),
    "edge_churn/cut": lambda graph: TopologySpec(
        "edge_churn", {"mode": "cut", "period": 6, "down": 3}
    ),
    "node_join_leave": lambda graph: TopologySpec(
        "node_join_leave",
        {"rate": 0.06, "rejoin_after": 4, "seed": 7},
    ),
    "expander_rewire": lambda graph: TopologySpec(
        "expander_rewire", {"swaps": 2, "seed": 5}
    ),
    "scripted": _scripted_spec,
}


def _initial(graph, replicas=None, seed=31):
    rng = np.random.default_rng(seed)
    shape = (
        graph.num_nodes
        if replicas is None
        else (replicas, graph.num_nodes)
    )
    return rng.integers(0, 300, shape).astype(np.int64)


def test_every_registered_topology_is_covered():
    """Adding a schedule without differential rows must fail."""
    covered = {key.split("/")[0] for key in TOPOLOGY_VARIANTS}
    assert covered == set(TOPOLOGIES.names())


@pytest.mark.parametrize("variant", sorted(TOPOLOGY_VARIANTS))
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_looped_parity_across_families(family, variant):
    """Dense vs structured under every schedule on every family."""
    graph = FAMILIES[family]()
    loads = _initial(graph)
    spec = TOPOLOGY_VARIANTS[variant](graph)
    dense = Simulator(
        graph,
        make("send_floor"),
        loads,
        topology=spec.build(),
        engine="dense",
    ).run(40)
    structured = Simulator(
        graph,
        make("send_floor"),
        loads,
        topology=spec.build(),
        engine="structured",
    ).run(40)
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    assert dense.discrepancy_history == structured.discrepancy_history
    assert dense.record.summary == structured.record.summary
    assert dense.record.summary["topology_schedule"] == spec.name
    assert int(dense.final_loads.sum()) == int(loads.sum())


@pytest.mark.parametrize("algorithm", ["send_floor", "rotor_router"])
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_reference_parity_across_families(family, algorithm):
    """Every schedule matches the rebuild-from-scratch reference.

    The fast path repairs ports in place and refreshes only dirty
    balancer rows; the reference rebuilds the whole graph every
    churned round and rebinds wholesale.  Agreement here is the proof
    that the incremental machinery changes nothing but the cost.
    """
    graph = FAMILIES[family]()
    loads = _initial(graph, seed=7)
    for variant, make_spec in sorted(TOPOLOGY_VARIANTS.items()):
        spec = make_spec(graph)
        balancer = make(algorithm)
        fast = Simulator(
            graph,
            balancer,
            loads,
            topology=spec.build(),
            engine="structured",
        ).run(15)
        reference = ReferenceChurnSimulator(
            graph, make(algorithm), loads, topology=spec.build()
        )
        reference.run(15)
        assert fast.final_loads.tolist() == reference.loads, variant
        assert sum(reference.loads) == int(loads.sum()), variant
        if algorithm == "rotor_router":
            # The looped engine must never have fallen back to a full
            # rebind: churn is served by the dirty-row fast path.
            assert balancer.refresh_full == 0, variant


@pytest.mark.parametrize("engine", ["dense", "structured"])
@pytest.mark.parametrize("variant", sorted(TOPOLOGY_VARIANTS))
def test_batched_parity_with_topology(variant, engine):
    """Batch replica r == solo Simulator with the offset-r schedule."""
    graph = families.torus(4, 2)
    replicas = 4
    initial = _initial(graph, replicas)
    spec = TOPOLOGY_VARIANTS[variant](graph)
    batch = BatchRunner(
        graph,
        [make("send_floor") for _ in range(replicas)],
        initial,
        topology=spec,
        engine=engine,
    ).run(40)
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            topology=spec.build(replica),
            engine="dense",
        ).run(40)
        np.testing.assert_array_equal(
            batch.final_loads[replica], solo.final_loads
        )
        assert batch.histories[replica] == solo.discrepancy_history
        assert batch.records[replica].summary == solo.record.summary


def test_parity_with_probes_attached():
    """Loads-only probes ride every path under churn, bit-identically."""
    graph = fat_tree(4)
    replicas = 3
    initial = _initial(graph, replicas, seed=13)
    spec = TOPOLOGY_VARIANTS["node_join_leave"](graph)
    batch = BatchRunner(
        graph,
        [make("send_floor") for _ in range(replicas)],
        initial,
        probes=[(LoadBoundsMonitor(),) for _ in range(replicas)],
        topology=spec,
        engine="structured",
    ).run(35)
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            probes=(LoadBoundsMonitor(),),
            topology=spec.build(replica),
            engine="dense",
        ).run(35)
        np.testing.assert_array_equal(
            batch.final_loads[replica], solo.final_loads
        )
        assert batch.records[replica].summary == solo.record.summary


def test_topology_composes_with_dynamics():
    """Churn and injectors stack: all paths still agree."""
    graph = leaf_spine(4, 2, 3)
    replicas = 3
    initial = _initial(graph, replicas, seed=17)
    spec = TOPOLOGY_VARIANTS["edge_churn/random"](graph)
    dynamics = DynamicsSpec("random_churn", {"rate": 9, "seed": 12})
    batch = BatchRunner(
        graph,
        [make("send_floor") for _ in range(replicas)],
        initial,
        dynamics=dynamics,
        topology=spec,
        engine="structured",
    ).run(40)
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            dynamics=dynamics.build(replica),
            topology=spec.build(replica),
            engine="dense",
        ).run(40)
        np.testing.assert_array_equal(
            batch.final_loads[replica], solo.final_loads
        )
        assert batch.records[replica].summary == solo.record.summary
        reference = ReferenceChurnSimulator(
            graph,
            make("send_floor"),
            initial[replica],
            topology=spec.build(replica),
            injector=dynamics.build(replica),
        )
        reference.run(40)
        assert solo.final_loads.tolist() == reference.loads


def test_run_until_parity_under_churn():
    """Early-stopping replicas freeze their schedules identically."""
    graph = families.hypercube(4)
    replicas = 3
    initial = _initial(graph, replicas, seed=23)
    spec = TOPOLOGY_VARIANTS["edge_churn/random"](graph)
    bound = 24

    def predicate(loads):
        return int(loads.max() - loads.min()) <= bound

    batch = BatchRunner(
        graph,
        [make("send_floor") for _ in range(replicas)],
        initial,
        topology=spec,
        engine="structured",
    ).run_until([predicate] * replicas, max_rounds=30, check_every=2)
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            topology=spec.build(replica),
            engine="structured",
        ).run_until(predicate, max_rounds=30, check_every=2)
        np.testing.assert_array_equal(
            batch.final_loads[replica], solo.final_loads
        )
        assert (
            batch.records[replica].rounds_executed
            == solo.record.rounds_executed
        )
        assert batch.records[replica].summary == solo.record.summary


def test_scenario_executor_parity_with_topology():
    """Scenario loop vs batch executors agree replica-for-replica."""
    scenario = Scenario(
        graph=GraphSpec("fat_tree", {"k": 4}),
        algorithm=AlgorithmSpec("send_floor"),
        loads=LoadSpec(
            "uniform_random", {"total_tokens": 800, "seed": 3}
        ),
        stop=StopRule.fixed(30),
        replicas=4,
        topology=TopologySpec(
            "edge_churn", {"rate": 0.15, "downtime": 3, "seed": 4}
        ),
    )
    looped = scenario.run(executor="loop")
    batched = scenario.run(executor="batch")
    assert batched.executor == "batch"
    for left, right in zip(looped.results, batched.results):
        np.testing.assert_array_equal(
            left.final_loads, right.final_loads
        )
        assert left.discrepancy_history == right.discrepancy_history
        assert left.record.summary == right.record.summary
    assert looped.replica_summary(2) == batched.replica_summary(2)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_random_parity_dense_structured_batched_reference(data):
    """Hypothesis: one random churned case through all four paths."""
    graph = data.draw(balancing_graphs(max_self_loops=4))
    replicas = data.draw(st.integers(1, 3))
    rounds = data.draw(st.integers(1, 10))
    spec = data.draw(topology_specs(graph.num_nodes, rounds))
    initial = np.stack(
        [
            data.draw(load_vectors(graph.num_nodes))
            for _ in range(replicas)
        ]
    )
    batch_dense = BatchRunner(
        graph,
        [make("send_floor") for _ in range(replicas)],
        initial,
        topology=spec,
        engine="dense",
    ).run(rounds)
    batch_structured = BatchRunner(
        graph,
        [make("send_floor") for _ in range(replicas)],
        initial,
        topology=spec,
        engine="structured",
    ).run(rounds)
    np.testing.assert_array_equal(
        batch_dense.final_loads, batch_structured.final_loads
    )
    assert batch_dense.histories == batch_structured.histories
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            topology=spec.build(replica),
            engine="structured",
        ).run(rounds)
        np.testing.assert_array_equal(
            batch_dense.final_loads[replica], solo.final_loads
        )
        reference = ReferenceChurnSimulator(
            graph,
            make("send_floor"),
            initial[replica],
            topology=spec.build(replica),
        )
        reference.run(rounds)
        assert solo.final_loads.tolist() == reference.loads
