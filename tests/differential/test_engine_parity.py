"""Differential suite: dense == structured == batched under dynamics.

The acceptance property of the dynamic-workload subsystem: with an
injector attached, every execution path — looped dense, looped
structured, the stacked batch runner (both engines, fixed-round and
``run_until``), with and without probes — produces bit-identical load
trajectories replica-for-replica.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.monitors import LoadBoundsMonitor
from repro.dynamics import DynamicsSpec
from repro.graphs import families
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)
from repro.scenarios.batch import BatchRunner
from tests.differential.strategies import dynamics_specs
from tests.helpers import balancing_graphs, load_vectors

FAMILIES = {
    "cycle": lambda: families.cycle(15),
    "torus": lambda: families.torus(4, 2),
    "hypercube": lambda: families.hypercube(4),
    "random_regular": lambda: families.random_regular(20, 4, seed=9),
}

CHURN = DynamicsSpec("random_churn", {"rate": 11, "seed": 8})


def _initial(graph, replicas=None, seed=31):
    rng = np.random.default_rng(seed)
    shape = (
        graph.num_nodes
        if replicas is None
        else (replicas, graph.num_nodes)
    )
    return rng.integers(0, 300, shape).astype(np.int64)


@pytest.mark.parametrize(
    "algorithm", ["send_floor", "send_rounded", "rotor_router"]
)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_looped_parity_across_families(algorithm, family):
    """Dense vs structured with churn on every standard family."""
    graph = FAMILIES[family]()
    loads = _initial(graph)
    dense = Simulator(
        graph,
        make(algorithm),
        loads,
        dynamics=CHURN.build(),
        engine="dense",
    ).run(60)
    structured = Simulator(
        graph,
        make(algorithm),
        loads,
        dynamics=CHURN.build(),
        engine="structured",
    ).run(60)
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    assert dense.discrepancy_history == structured.discrepancy_history
    assert (
        dense.record.summary["tokens_injected"]
        == structured.record.summary["tokens_injected"]
    )


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("engine", ["dense", "structured"])
def test_batched_parity_with_dynamics(family, engine):
    """Batch replica r == solo Simulator with the seed-r injector."""
    graph = FAMILIES[family]()
    replicas = 4
    initial = _initial(graph, replicas)
    batch = BatchRunner(
        graph,
        make("send_floor"),
        initial,
        dynamics=CHURN,
        engine=engine,
    ).run(50)
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            dynamics=CHURN.build(replica),
            engine="dense",
        ).run(50)
        np.testing.assert_array_equal(
            batch.final_loads[replica], solo.final_loads
        )
        assert batch.histories[replica] == solo.discrepancy_history
        assert (
            batch.records[replica].summary
            == solo.record.summary
        )


@pytest.mark.parametrize("algorithm", ["send_floor", "rotor_router"])
def test_batched_run_until_parity_with_dynamics(algorithm):
    """Early stopping freezes replicas (and their injectors) identically."""
    graph = families.cycle(15)
    replicas = 4
    initial = _initial(graph, replicas, seed=5)
    spec = DynamicsSpec("constant_rate", {"rate": 6, "seed": 2})

    def balancers():
        if algorithm == "rotor_router":
            return [make(algorithm) for _ in range(replicas)]
        return make(algorithm)

    def predicates():
        return [
            lambda loads: int(loads.max() - loads.min()) <= 14
            for _ in range(replicas)
        ]

    dense = BatchRunner(
        graph, balancers(), initial, dynamics=spec, engine="dense"
    ).run_until(predicates(), max_rounds=200, check_every=2)
    structured = BatchRunner(
        graph, balancers(), initial, dynamics=spec, engine="structured"
    ).run_until(predicates(), max_rounds=200, check_every=2)
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    np.testing.assert_array_equal(
        dense.rounds_executed, structured.rounds_executed
    )
    np.testing.assert_array_equal(
        dense.stopped_early, structured.stopped_early
    )
    assert dense.histories == structured.histories
    # ... and each batch replica matches its looped twin.
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make(algorithm),
            initial[replica],
            dynamics=spec.build(replica),
            engine="dense",
        ).run_until(
            lambda loads: int(loads.max() - loads.min()) <= 14,
            max_rounds=200,
            check_every=2,
        )
        np.testing.assert_array_equal(
            dense.final_loads[replica], solo.final_loads
        )
        assert (
            int(dense.rounds_executed[replica])
            == solo.rounds_executed
        )


def test_parity_with_probes_attached():
    """Loads-only probes ride every path under dynamics, bit-identically."""
    graph = families.torus(4, 2)
    replicas = 3
    initial = _initial(graph, replicas, seed=13)
    spec = DynamicsSpec("batch_arrivals", {"tokens": 25, "period": 4, "seed": 6})
    batch = BatchRunner(
        graph,
        make("send_floor"),
        initial,
        probes=[(LoadBoundsMonitor(),) for _ in range(replicas)],
        dynamics=spec,
        engine="structured",
    ).run(45)
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            probes=(LoadBoundsMonitor(),),
            dynamics=spec.build(replica),
            engine="dense",
        ).run(45)
        np.testing.assert_array_equal(
            batch.final_loads[replica], solo.final_loads
        )
        assert (
            batch.records[replica].summary == solo.record.summary
        )


def test_sends_probe_parity_with_dynamics():
    """A structured-capable sends probe sees identical flow totals."""
    from repro.core.flows import FlowTracker

    graph = families.cycle(12)
    loads = _initial(graph, seed=41)
    spec = DynamicsSpec("adversarial_peak", {"rate": 5})
    dense_flows = FlowTracker()
    structured_flows = FlowTracker()
    Simulator(
        graph,
        make("send_floor"),
        loads,
        probes=(dense_flows,),
        dynamics=spec.build(),
        engine="dense",
    ).run(30)
    Simulator(
        graph,
        make("send_floor"),
        loads,
        probes=(structured_flows,),
        dynamics=spec.build(),
        engine="structured",
    ).run(30)
    np.testing.assert_array_equal(
        dense_flows.cumulative, structured_flows.cumulative
    )
    assert dense_flows.summary() == structured_flows.summary()


def test_scenario_executor_parity_with_dynamics():
    """Scenario loop vs batch executors agree replica-for-replica."""
    scenario = Scenario(
        graph=GraphSpec("torus", {"side": 4, "dimensions": 2}),
        algorithm=AlgorithmSpec("send_floor"),
        loads=LoadSpec("uniform_random", {"total_tokens": 800, "seed": 3}),
        stop=StopRule.fixed(40),
        replicas=4,
        dynamics=DynamicsSpec("random_churn", {"rate": 9, "seed": 12}),
    )
    looped = scenario.run(executor="loop")
    batched = scenario.run(executor="batch")
    assert batched.executor == "batch"
    for left, right in zip(looped.results, batched.results):
        np.testing.assert_array_equal(
            left.final_loads, right.final_loads
        )
        assert left.discrepancy_history == right.discrepancy_history
        assert left.record.summary == right.record.summary
    assert looped.replica_summary(2) == batched.replica_summary(2)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_random_parity_dense_structured_batched(data):
    """Hypothesis: one random dynamic case through all three paths."""
    graph = data.draw(balancing_graphs(max_self_loops=4))
    algorithm = data.draw(st.sampled_from(["send_floor", "send_rounded"]))
    if (
        algorithm == "send_rounded"
        and graph.total_degree < 2 * graph.degree
    ):
        algorithm = "send_floor"
    replicas = data.draw(st.integers(1, 4))
    rounds = data.draw(st.integers(1, 12))
    spec = data.draw(dynamics_specs(graph.num_nodes, rounds))
    initial = np.stack(
        [
            data.draw(load_vectors(graph.num_nodes))
            for _ in range(replicas)
        ]
    )
    batch_dense = BatchRunner(
        graph, make(algorithm), initial, dynamics=spec, engine="dense"
    ).run(rounds)
    batch_structured = BatchRunner(
        graph,
        make(algorithm),
        initial,
        dynamics=spec,
        engine="structured",
    ).run(rounds)
    np.testing.assert_array_equal(
        batch_dense.final_loads, batch_structured.final_loads
    )
    assert batch_dense.histories == batch_structured.histories
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make(algorithm),
            initial[replica],
            dynamics=spec.build(replica),
            engine="structured",
        ).run(rounds)
        np.testing.assert_array_equal(
            batch_dense.final_loads[replica], solo.final_loads
        )
        assert batch_dense.histories[replica] == solo.discrepancy_history
