"""Differential suite: dense == structured == batched == reference
under network faults.

The acceptance property of the fault-injection subsystem: with a fault
schedule attached, every execution path — looped dense, looped
structured, the stacked batch runner, the scenario executors, with and
without probes — produces bit-identical load trajectories
replica-for-replica, and all of them match the per-port reference
implementation in :mod:`tests.differential.reference_faults`.

Coverage spans every registered fault schedule on the four core
families *and* both datacenter fabrics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.monitors import LoadBoundsMonitor
from repro.dynamics import DynamicsSpec
from repro.faults import FAULTS, FaultSpec
from repro.graphs import families
from repro.graphs.datacenter import fat_tree, leaf_spine
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)
from repro.scenarios.batch import BatchRunner
from tests.differential.reference_faults import ReferenceFaultySimulator
from tests.differential.strategies import fault_specs
from tests.helpers import balancing_graphs, load_vectors

FAMILIES = {
    "cycle": lambda: families.cycle(15),
    "torus": lambda: families.torus(4, 2),
    "hypercube": lambda: families.hypercube(4),
    "random_regular": lambda: families.random_regular(20, 4, seed=9),
    "fat_tree": lambda: fat_tree(4),
    "leaf_spine": lambda: leaf_spine(4, 2, 3),
}

FAULT_VARIANTS = {
    "link_failures/random": FaultSpec(
        "link_failures", {"rate": 0.3, "seed": 3}
    ),
    "link_failures/cut": FaultSpec(
        "link_failures", {"mode": "cut", "period": 6, "down": 3}
    ),
    "node_crashes/neighbors": FaultSpec(
        "node_crashes", {"rate": 0.08, "downtime": 4, "seed": 7}
    ),
    "node_crashes/lost": FaultSpec(
        "node_crashes",
        {"rate": 0.08, "downtime": 4, "handoff": "lost", "seed": 7},
    ),
    "message_drop": FaultSpec("message_drop", {"rate": 0.2, "seed": 11}),
}


def _initial(graph, replicas=None, seed=31):
    rng = np.random.default_rng(seed)
    shape = (
        graph.num_nodes
        if replicas is None
        else (replicas, graph.num_nodes)
    )
    return rng.integers(0, 300, shape).astype(np.int64)


def test_every_registered_fault_is_covered():
    """Adding a fault schedule without differential rows must fail."""
    covered = {key.split("/")[0] for key in FAULT_VARIANTS}
    assert covered == set(FAULTS.names())


@pytest.mark.parametrize("variant", sorted(FAULT_VARIANTS))
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_looped_parity_across_families(family, variant):
    """Dense vs structured under every fault on every family."""
    graph = FAMILIES[family]()
    loads = _initial(graph)
    spec = FAULT_VARIANTS[variant]
    dense = Simulator(
        graph,
        make("send_floor"),
        loads,
        faults=spec.build(),
        engine="dense",
    ).run(40)
    structured = Simulator(
        graph,
        make("send_floor"),
        loads,
        faults=spec.build(),
        engine="structured",
    ).run(40)
    np.testing.assert_array_equal(
        dense.final_loads, structured.final_loads
    )
    assert dense.discrepancy_history == structured.discrepancy_history
    assert dense.record.summary == structured.record.summary
    assert dense.record.summary["fault_schedule"] == spec.name


@pytest.mark.parametrize("algorithm", ["send_floor", "rotor_router"])
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_reference_parity_across_families(family, algorithm):
    """Every fault variant matches the per-port reference engine."""
    graph = FAMILIES[family]()
    loads = _initial(graph, seed=7)
    for variant, spec in sorted(FAULT_VARIANTS.items()):
        fast = Simulator(
            graph,
            make(algorithm),
            loads,
            faults=spec.build(),
            engine="structured",
        ).run(15)
        reference = ReferenceFaultySimulator(
            graph, make(algorithm), loads, faults=spec.build()
        )
        reference.run(15)
        assert fast.final_loads.tolist() == reference.loads, variant
        assert (
            fast.record.summary["tokens_dropped"]
            == reference.tokens_dropped
        ), variant


@pytest.mark.parametrize("engine", ["dense", "structured"])
@pytest.mark.parametrize("variant", sorted(FAULT_VARIANTS))
def test_batched_parity_with_faults(variant, engine):
    """Batch replica r == solo Simulator with the seed-r schedule."""
    graph = families.torus(4, 2)
    replicas = 4
    initial = _initial(graph, replicas)
    spec = FAULT_VARIANTS[variant]
    batch = BatchRunner(
        graph,
        make("send_floor"),
        initial,
        faults=spec,
        engine=engine,
    ).run(40)
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            faults=spec.build(replica),
            engine="dense",
        ).run(40)
        np.testing.assert_array_equal(
            batch.final_loads[replica], solo.final_loads
        )
        assert batch.histories[replica] == solo.discrepancy_history
        assert batch.records[replica].summary == solo.record.summary


def test_parity_with_probes_attached():
    """Loads-only probes ride every path under faults, bit-identically."""
    graph = fat_tree(4)
    replicas = 3
    initial = _initial(graph, replicas, seed=13)
    spec = FAULT_VARIANTS["node_crashes/neighbors"]
    batch = BatchRunner(
        graph,
        make("send_floor"),
        initial,
        probes=[(LoadBoundsMonitor(),) for _ in range(replicas)],
        faults=spec,
        engine="structured",
    ).run(35)
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            probes=(LoadBoundsMonitor(),),
            faults=spec.build(replica),
            engine="dense",
        ).run(35)
        np.testing.assert_array_equal(
            batch.final_loads[replica], solo.final_loads
        )
        assert batch.records[replica].summary == solo.record.summary


def test_faults_compose_with_dynamics():
    """Fault schedules and injectors stack: all paths still agree."""
    graph = leaf_spine(4, 2, 3)
    replicas = 3
    initial = _initial(graph, replicas, seed=17)
    faults = FAULT_VARIANTS["message_drop"]
    dynamics = DynamicsSpec("random_churn", {"rate": 9, "seed": 12})
    batch = BatchRunner(
        graph,
        make("send_floor"),
        initial,
        dynamics=dynamics,
        faults=faults,
        engine="structured",
    ).run(40)
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            dynamics=dynamics.build(replica),
            faults=faults.build(replica),
            engine="dense",
        ).run(40)
        np.testing.assert_array_equal(
            batch.final_loads[replica], solo.final_loads
        )
        assert batch.records[replica].summary == solo.record.summary
        reference = ReferenceFaultySimulator(
            graph,
            make("send_floor"),
            initial[replica],
            faults=faults.build(replica),
            injector=dynamics.build(replica),
        )
        reference.run(40)
        assert solo.final_loads.tolist() == reference.loads


def test_scenario_executor_parity_with_faults():
    """Scenario loop vs batch executors agree replica-for-replica."""
    scenario = Scenario(
        graph=GraphSpec("fat_tree", {"k": 4}),
        algorithm=AlgorithmSpec("send_floor"),
        loads=LoadSpec(
            "uniform_random", {"total_tokens": 800, "seed": 3}
        ),
        stop=StopRule.fixed(30),
        replicas=4,
        faults=FaultSpec("link_failures", {"rate": 0.25, "seed": 4}),
    )
    looped = scenario.run(executor="loop")
    batched = scenario.run(executor="batch")
    assert batched.executor == "batch"
    for left, right in zip(looped.results, batched.results):
        np.testing.assert_array_equal(
            left.final_loads, right.final_loads
        )
        assert left.discrepancy_history == right.discrepancy_history
        assert left.record.summary == right.record.summary
    assert looped.replica_summary(2) == batched.replica_summary(2)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_random_parity_dense_structured_batched_reference(data):
    """Hypothesis: one random faulty case through all four paths."""
    graph = data.draw(balancing_graphs(max_self_loops=4))
    replicas = data.draw(st.integers(1, 3))
    rounds = data.draw(st.integers(1, 10))
    spec = data.draw(fault_specs(graph.num_nodes, rounds))
    initial = np.stack(
        [
            data.draw(load_vectors(graph.num_nodes))
            for _ in range(replicas)
        ]
    )
    batch_dense = BatchRunner(
        graph, make("send_floor"), initial, faults=spec, engine="dense"
    ).run(rounds)
    batch_structured = BatchRunner(
        graph,
        make("send_floor"),
        initial,
        faults=spec,
        engine="structured",
    ).run(rounds)
    np.testing.assert_array_equal(
        batch_dense.final_loads, batch_structured.final_loads
    )
    assert batch_dense.histories == batch_structured.histories
    for replica in range(replicas):
        solo = Simulator(
            graph,
            make("send_floor"),
            initial[replica],
            faults=spec.build(replica),
            engine="structured",
        ).run(rounds)
        np.testing.assert_array_equal(
            batch_dense.final_loads[replica], solo.final_loads
        )
        reference = ReferenceFaultySimulator(
            graph,
            make("send_floor"),
            initial[replica],
            faults=spec.build(replica),
        )
        reference.run(rounds)
        assert solo.final_loads.tolist() == reference.loads
