"""Differential parity on the datacenter fabrics with traffic dynamics.

The padded fat-tree / leaf-spine graphs route their padding ports back
to the owning node, so every engine (dense matrix, structured
matrix-free, and the batched scenario path) must agree with the naive
per-token :class:`ReferenceDynamicSimulator` under the repro.traffic
injectors — load vector for load vector, round for round.
"""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.dynamics import DynamicsSpec
from repro.graphs.datacenter import fat_tree, leaf_spine
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)
from tests.differential.reference_dynamics import ReferenceDynamicSimulator

FABRICS = {
    "fat_tree": lambda: fat_tree(4),
    "leaf_spine": lambda: leaf_spine(4, 2, 3),
}

TRAFFIC_CASES = [
    DynamicsSpec("poisson_arrivals", {"rate": 0.6, "seed": 5}),
    DynamicsSpec(
        "pareto_flows",
        {"rate": 1.2, "alpha": 1.5, "max_size": 40, "seed": 5},
    ),
    DynamicsSpec(
        "diurnal", {"rate": 1.5, "period": 10, "amplitude": 0.7, "seed": 5}
    ),
    DynamicsSpec(
        "hotspot_shift",
        {"rate": 9, "hotspots": 2, "shift_every": 6, "seed": 5},
    ),
    DynamicsSpec(
        "correlated_burst",
        {"tokens": 8, "nodes": 3, "probability": 0.3, "seed": 5},
    ),
]


@pytest.mark.parametrize("fabric", sorted(FABRICS))
@pytest.mark.parametrize(
    "spec", TRAFFIC_CASES, ids=lambda s: s.name
)
def test_dense_matches_reference(fabric, spec):
    graph = FABRICS[fabric]()
    loads = np.random.default_rng(13).integers(
        0, 40, graph.num_nodes
    ).astype(np.int64)
    fast = Simulator(
        graph,
        make("send_floor"),
        loads,
        dynamics=spec.build(),
        engine="dense",
    )
    slow = ReferenceDynamicSimulator(
        graph, make("send_floor"), loads, injector=spec.build()
    )
    for _ in range(25):
        fast.step()
        slow.step()
        assert fast.loads.tolist() == slow.loads


@pytest.mark.parametrize(
    "algorithm", ["send_floor", "send_rounded", "rotor_router"]
)
def test_structured_matches_reference_on_leaf_spine(algorithm):
    graph = leaf_spine(4, 2, 3)
    loads = np.random.default_rng(29).integers(
        0, 60, graph.num_nodes
    ).astype(np.int64)
    spec = DynamicsSpec("poisson_arrivals", {"rate": 0.8, "seed": 2})
    fast = Simulator(
        graph,
        make(algorithm),
        loads,
        dynamics=spec.build(),
        engine="structured",
    )
    slow = ReferenceDynamicSimulator(
        graph, make(algorithm), loads, injector=spec.build()
    )
    for _ in range(35):
        fast.step()
        slow.step()
        assert fast.loads.tolist() == slow.loads


def test_batched_scenario_matches_reference_on_leaf_spine():
    """The scenario batch executor against the per-token loops.

    Multi-replica loads-only scenarios resolve to the batch executor;
    each replica must still equal a naive solo run with the replica's
    offset seed applied to both loads and dynamics.
    """
    spec = GraphSpec(
        "leaf_spine", {"leaves": 4, "spines": 2, "hosts_per_leaf": 3}
    )
    loads = LoadSpec("uniform_random", {"total_tokens": 300, "seed": 7})
    dynamics = DynamicsSpec("poisson_arrivals", {"rate": 0.7, "seed": 4})
    outcome = Scenario(
        graph=spec,
        algorithm=AlgorithmSpec("send_floor"),
        loads=loads,
        stop=StopRule.fixed(25),
        replicas=3,
        dynamics=dynamics,
    ).run(executor="batch")
    graph = spec.build()
    for replica in range(3):
        slow = ReferenceDynamicSimulator(
            graph,
            make("send_floor"),
            loads.build(graph.num_nodes, replica),
            injector=dynamics.build(replica),
        )
        slow.run(25)
        assert outcome.replica(replica).final_loads.tolist() == slow.loads
