"""A deliberately naive reference implementation of *faulty* rounds.

The production engines execute network faults as sparse ``O(faults)``
corrections applied after the fault-free round (see
:mod:`repro.faults.schedules` for the model).  This module is the
differential-testing anchor for all of them: one faulty round is
executed with per-node, per-port Python loops and explicit phase
ordering —

1. the fault adversary moves first: ``round_state`` fires (crash /
   recover epoch events), and any crash-handoff ``load_delta`` is added
   node by node (asserting no node goes negative);
2. dynamics injection (optional) is added node by node;
3. the balancer's fault-free sends are applied one port at a time —
   except that a send over a *dead* directed port stays at the sender
   and a *dropped* send vanishes (tracked as lost);
4. conservation is asserted exactly: the balancing phase changes the
   total by precisely ``-lost``.

The reference owns its own :class:`~repro.faults.schedules.\
FaultSchedule` instance built from the same spec as the engine under
test.  Because ``round_state`` is called exactly once per round with
the same round numbers, both instances consume identical RNG streams
and produce identical fault histories.

Nothing here is clever, which is the point: correctness is obvious by
inspection, so any divergence from the fast engines is a fast-engine
bug.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import Balancer
from repro.core.errors import NegativeLoadError
from repro.graphs.balancing import BalancingGraph


class ReferenceFaultySimulator:
    """Slow, obviously-correct faulty-round execution (tests only)."""

    def __init__(
        self,
        graph: BalancingGraph,
        balancer: Balancer,
        initial_loads: np.ndarray,
        faults,
        injector=None,
    ) -> None:
        self.graph = graph
        self.balancer = balancer.bind(graph)
        self.faults = faults
        self.injector = injector
        self.loads = [int(v) for v in initial_loads]
        self.round = 1
        self.tokens_dropped = 0
        faults.start(graph, np.asarray(initial_loads, dtype=np.int64))
        if injector is not None:
            injector.start(
                graph, np.asarray(initial_loads, dtype=np.int64)
            )

    def step(self) -> list[int]:
        graph = self.graph
        # Phase 1: fault epoch events (crash handoffs, recoveries).
        round_faults = self.faults.round_state(
            self.round, np.array(self.loads, dtype=np.int64)
        )
        dead: set[tuple[int, int]] = set()
        dropped: set[tuple[int, int]] = set()
        if round_faults is not None:
            if round_faults.load_delta is not None:
                for node in range(graph.num_nodes):
                    self.loads[node] += int(round_faults.load_delta[node])
                    assert self.loads[node] >= 0, (
                        f"fault schedule drained node {node} below zero "
                        "in the reference engine"
                    )
            dead = {(int(u), int(p)) for u, p in round_faults.dead}
            dropped = {(int(u), int(p)) for u, p in round_faults.dropped}
        # Phase 2: dynamics injection.
        if self.injector is not None:
            delta = self.injector.delta(
                self.round, np.array(self.loads, dtype=np.int64)
            )
            for node in range(graph.num_nodes):
                self.loads[node] += int(delta[node])
                assert self.loads[node] >= 0
        total_before_balancing = sum(self.loads)
        # Phase 3: fault-free sends, corrected one port at a time.
        loads_array = np.array(self.loads, dtype=np.int64)
        sends = self.balancer.sends(loads_array, self.round)
        new_loads = [0] * graph.num_nodes
        lost = 0
        for node in range(graph.num_nodes):
            outgoing = int(sends[node].sum())
            remainder = self.loads[node] - outgoing
            if remainder < 0 and not self.balancer.allows_negative:
                raise NegativeLoadError(
                    f"node {node} overdrew in reference engine"
                )
            new_loads[node] += remainder
        for node in range(graph.num_nodes):
            for port in range(graph.total_degree):
                value = int(sends[node, port])
                if (node, port) in dead:
                    # The link is down: the send bounces back.
                    new_loads[node] += value
                elif (node, port) in dropped:
                    # The message vanishes in flight.
                    lost += value
                else:
                    target = graph.port_target(node, port)
                    new_loads[target] += value
        assert sum(new_loads) == total_before_balancing - lost, (
            "faulty balancing must conserve tokens up to tracked drops"
        )
        self.tokens_dropped += lost
        self.loads = new_loads
        self.round += 1
        return new_loads

    def run(self, rounds: int) -> list[int]:
        for _ in range(rounds):
            self.step()
        return self.loads
