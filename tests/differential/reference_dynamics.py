"""A deliberately naive reference implementation of *injected* rounds.

The production engines apply dynamics as a vectorized delta add feeding
dense, structured, and batched execution paths.  This module is the
differential-testing anchor for all of them: one injected round is
executed with per-node Python loops and explicit phase ordering —

1. the adversary moves first: the injector's delta is added node by
   node (asserting no node is drained below zero);
2. the balancer's sends are applied one port at a time, exactly as in
   :class:`repro.core.reference.ReferenceSimulator`;
3. the balancing phase is asserted to conserve tokens (only phase 1 may
   change the total).

Nothing here is clever, which is the point: correctness is obvious by
inspection, so any divergence from the fast engines is a fast-engine
bug.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancer import Balancer
from repro.core.errors import NegativeLoadError
from repro.graphs.balancing import BalancingGraph


class ReferenceDynamicSimulator:
    """Slow, obviously-correct dynamic-round execution (tests only)."""

    def __init__(
        self,
        graph: BalancingGraph,
        balancer: Balancer,
        initial_loads: np.ndarray,
        injector=None,
    ) -> None:
        self.graph = graph
        self.balancer = balancer.bind(graph)
        self.injector = injector
        self.loads = [int(v) for v in initial_loads]
        self.round = 1
        if injector is not None:
            injector.start(
                graph, np.asarray(initial_loads, dtype=np.int64)
            )

    def step(self) -> list[int]:
        graph = self.graph
        # Phase 1: the adversary moves first.
        if self.injector is not None:
            delta = self.injector.delta(
                self.round, np.array(self.loads, dtype=np.int64)
            )
            for node in range(graph.num_nodes):
                self.loads[node] += int(delta[node])
                assert self.loads[node] >= 0, (
                    f"injector drained node {node} below zero in the "
                    "reference engine"
                )
        total_before_balancing = sum(self.loads)
        # Phase 2: balancing, one token movement at a time.
        loads_array = np.array(self.loads, dtype=np.int64)
        sends = self.balancer.sends(loads_array, self.round)
        new_loads = [0] * graph.num_nodes
        for node in range(graph.num_nodes):
            outgoing = int(sends[node].sum())
            remainder = self.loads[node] - outgoing
            if remainder < 0 and not self.balancer.allows_negative:
                raise NegativeLoadError(
                    f"node {node} overdrew in reference engine"
                )
            new_loads[node] += remainder
        for node in range(graph.num_nodes):
            for port in range(graph.total_degree):
                target = graph.port_target(node, port)
                new_loads[target] += int(sends[node, port])
        assert sum(new_loads) == total_before_balancing, (
            "balancing phase must conserve tokens"
        )
        self.loads = new_loads
        self.round += 1
        return new_loads

    def run(self, rounds: int) -> list[int]:
        for _ in range(rounds):
            self.step()
        return self.loads
