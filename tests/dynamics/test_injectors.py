"""Unit tests for the load-event injectors and DynamicsSpec."""

import numpy as np
import pytest

from repro.core.engine import Simulator
from repro.core.errors import InvalidInjection
from repro.dynamics import (
    INJECTORS,
    AdversarialPeak,
    ConstantRate,
    DynamicsSpec,
    RandomChurn,
    Scripted,
    as_injector,
    validate_delta,
)
from repro.graphs import families


class TestRegistry:
    def test_builtins_registered(self):
        assert set(INJECTORS.names()) >= {
            "constant_rate",
            "batch_arrivals",
            "adversarial_peak",
            "random_churn",
            "scripted",
        }

    def test_spec_builds_instances(self):
        injector = DynamicsSpec("constant_rate", {"rate": 3}).build()
        assert isinstance(injector, ConstantRate)
        assert injector.rate == 3


class TestConstantRate:
    def test_round_robin_is_deterministic(self):
        injector = ConstantRate(5, placement="round_robin")
        loads = np.zeros(8, dtype=np.int64)
        injector.start(None, loads)
        # deltas may be reused scratch buffers — copy to retain
        first = injector.delta(1, loads).copy()
        second = injector.delta(2, loads).copy()
        assert first.sum() == second.sum() == 5
        # the cursor continues where the previous round stopped
        assert first.tolist() == [1, 1, 1, 1, 1, 0, 0, 0]
        assert second.tolist() == [1, 1, 0, 0, 0, 1, 1, 1]

    def test_random_placement_reproducible_after_restart(self):
        injector = ConstantRate(16, seed=4)
        loads = np.zeros(10, dtype=np.int64)
        injector.start(None, loads)
        stream = [injector.delta(t, loads).tolist() for t in range(1, 5)]
        injector.start(None, loads)  # reset re-seeds the RNG
        again = [injector.delta(t, loads).tolist() for t in range(1, 5)]
        assert stream == again

    def test_invalid_params(self):
        with pytest.raises(InvalidInjection):
            ConstantRate(-1)
        with pytest.raises(InvalidInjection):
            ConstantRate(1, placement="teleport")


class TestBatchArrivals:
    def test_period_and_fixed_node(self):
        spec = DynamicsSpec(
            "batch_arrivals", {"tokens": 12, "period": 3, "node": 2}
        )
        injector = spec.build()
        loads = np.zeros(6, dtype=np.int64)
        injector.start(None, loads)
        deltas = [injector.delta(t, loads).copy() for t in range(1, 7)]
        for t, delta in zip(range(1, 7), deltas):
            if t % 3 == 0:
                assert delta[2] == 12 and delta.sum() == 12
            else:
                assert delta.sum() == 0


class TestAdversarialPeak:
    def test_targets_current_maximum(self):
        injector = AdversarialPeak(rate=4)
        loads = np.array([1, 9, 2, 9], dtype=np.int64)
        injector.start(None, loads)
        delta = injector.delta(1, loads)
        assert delta[1] == 4  # ties break to the lowest index
        assert delta.sum() == 4


class TestRandomChurn:
    def test_refill_conserves_total(self):
        injector = RandomChurn(rate=20, seed=9)
        loads = np.full(12, 5, dtype=np.int64)
        injector.start(None, loads)
        for t in range(1, 30):
            delta = injector.delta(t, loads)
            assert delta.sum() == 0
            loads = loads + delta
            assert loads.min() >= 0

    def test_drain_only_never_overdraws(self):
        injector = RandomChurn(rate=50, refill=False, seed=1)
        loads = np.array([3, 0, 1, 0, 2], dtype=np.int64)
        injector.start(None, loads)
        while loads.sum() > 0:
            delta = injector.delta(1, loads)
            assert delta.max() <= 0
            loads = loads + delta
            assert loads.min() >= 0
        assert injector.summary()["tokens_departed"] == 6


class TestScripted:
    def test_events_apply_on_their_rounds(self):
        injector = Scripted([[2, 1, 10], [2, 1, 5], [4, 0, -3]])
        loads = np.array([20, 0, 0], dtype=np.int64)
        injector.start(None, loads)
        assert injector.delta(1, loads).tolist() == [0, 0, 0]
        assert injector.delta(2, loads).tolist() == [0, 15, 0]
        assert injector.delta(3, loads).tolist() == [0, 0, 0]
        assert injector.delta(4, loads).tolist() == [-3, 0, 0]

    def test_malformed_events_rejected(self):
        with pytest.raises(InvalidInjection):
            Scripted([[1, 2]])
        with pytest.raises(InvalidInjection):
            Scripted([[0, 1, 5]])

    def test_overdraw_raises_in_engine(self):
        graph = families.cycle(6)
        from repro.algorithms.registry import make

        simulator = Simulator(
            graph,
            make("send_floor"),
            np.full(6, 2, dtype=np.int64),
            dynamics=Scripted([[3, 0, -40]]),
        )
        simulator.step()
        simulator.step()
        with pytest.raises(InvalidInjection, match="drained node 0"):
            simulator.step()


class TestValidateDelta:
    def test_shape_mismatch(self):
        with pytest.raises(InvalidInjection, match="shape"):
            validate_delta(
                np.zeros(3, dtype=np.int64),
                np.zeros(4, dtype=np.int64),
                "x",
                1,
            )

    def test_float_delta_rejected(self):
        with pytest.raises(InvalidInjection, match="integer"):
            validate_delta(
                np.zeros(3), np.zeros(3, dtype=np.int64), "x", 1
            )

    def test_overdraw_rejected(self):
        with pytest.raises(InvalidInjection, match="below"):
            validate_delta(
                np.array([-5, 0], dtype=np.int64),
                np.array([4, 0], dtype=np.int64),
                "x",
                1,
            )


class TestDynamicsSpec:
    def test_json_round_trip(self):
        spec = DynamicsSpec("random_churn", {"rate": 7, "seed": 2})
        assert DynamicsSpec.from_dict(spec.to_dict()) == spec

    def test_parse_shorthand(self):
        assert DynamicsSpec.parse("adversarial_peak") == DynamicsSpec(
            "adversarial_peak"
        )
        parsed = DynamicsSpec.parse('constant_rate:{"rate": 8}')
        assert parsed == DynamicsSpec("constant_rate", {"rate": 8})
        with pytest.raises(ValueError, match="JSON object"):
            DynamicsSpec.parse("constant_rate:[1]")

    def test_replica_seed_offset(self):
        spec = DynamicsSpec("constant_rate", {"rate": 4, "seed": 10})
        assert spec.build(3).seed == 13
        assert spec.build(0).seed == 10
        # seedless (deterministic) injectors are identical per replica
        peak = DynamicsSpec("adversarial_peak", {"rate": 2})
        assert peak.build(5).rate == 2

    def test_as_injector_coercion(self):
        assert as_injector(None) is None
        built = as_injector(DynamicsSpec("adversarial_peak", {"rate": 1}))
        assert isinstance(built, AdversarialPeak)
        instance = AdversarialPeak(rate=1)
        assert as_injector(instance) is instance
        with pytest.raises(TypeError):
            as_injector("adversarial_peak")


class TestEngineBookkeeping:
    def test_totals_and_record_track_injection(self):
        from repro.algorithms.registry import make

        graph = families.cycle(8)
        simulator = Simulator(
            graph,
            make("send_floor"),
            np.full(8, 4, dtype=np.int64),
            dynamics=ConstantRate(3, placement="round_robin"),
        )
        result = simulator.run(10)
        assert simulator.total_tokens == 32 + 30
        assert result.final_loads.sum() == 62
        assert result.record.summary["tokens_injected"] == 30
        assert result.record.summary["tokens_arrived"] == 30

    def test_static_records_have_no_injection_keys(self):
        from repro.algorithms.registry import make

        graph = families.cycle(8)
        result = Simulator(
            graph,
            make("send_floor"),
            np.full(8, 4, dtype=np.int64),
        ).run(5)
        assert "tokens_injected" not in result.record.summary
