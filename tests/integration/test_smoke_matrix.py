"""Exhaustive smoke matrix: probe × engine × executor.

Every registered probe must run under every engine (``dense`` /
``structured`` / ``auto``) and under both executors (looped Simulator
vs batched replicas) without error — or fail with the documented
capability error — and all paths that do run must agree on the probe's
scalar summary.  This is the guard that keeps fast-path engineering
honest as probes and engines grow.
"""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.loads import uniform_random
from repro.core.probes import PROBES, ProbeSpec
from repro.dynamics import DynamicsSpec
from repro.graphs import families
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)

ENGINES = ("dense", "structured", "auto")
ROUNDS = 25

#: Minimal constructor params for probes without defaults.  A new
#: probe with required params must add an entry here — the matrix
#: below fails loudly on construction otherwise, which is the point:
#: every registered probe stays covered.
REQUIRED_PARAMS: dict[str, dict] = {
    "potentials": {"c_values": [4], "s": 1},
    "token_coloring": {"c": 2},
}


def _spec(name: str) -> ProbeSpec:
    return ProbeSpec(name, REQUIRED_PARAMS.get(name, {}))


def _graph():
    return families.torus(4, 2)


def _loads(n):
    return uniform_random(n, 20 * n, seed=3)


def _dense_required(name: str) -> bool:
    probe = _spec(name).build()
    return probe.needs != "loads" and not probe.accepts_structured


def _loads_only(name: str) -> bool:
    return _spec(name).build().needs == "loads"


def test_registry_is_nonempty():
    assert len(PROBES.names()) >= 9


@pytest.mark.parametrize("probe_name", PROBES.names())
def test_probe_runs_on_every_engine_and_agrees(probe_name):
    """dense/structured/auto all run (or refuse loudly) and agree."""
    graph = _graph()
    loads = _loads(graph.num_nodes)
    summaries = {}
    for engine in ENGINES:
        probe = _spec(probe_name).build()
        if engine == "structured" and _dense_required(probe_name):
            with pytest.raises(ValueError, match="dense"):
                Simulator(
                    graph,
                    make("send_floor"),
                    loads,
                    probes=(probe,),
                    engine=engine,
                )
            continue
        result = Simulator(
            graph,
            make("send_floor"),
            loads,
            probes=(probe,),
            engine=engine,
        ).run(ROUNDS)
        summaries[engine] = result.record.summary
    assert len(summaries) >= 2
    reference = next(iter(summaries.values()))
    for engine, summary in summaries.items():
        assert summary == reference, f"{engine} summary diverged"


@pytest.mark.parametrize("probe_name", PROBES.names())
def test_probe_looped_vs_batched(probe_name):
    """Scenario executors agree for loads-only probes; others refuse."""
    scenario = Scenario(
        graph=GraphSpec("torus", {"side": 4, "dimensions": 2}),
        algorithm=AlgorithmSpec("send_floor"),
        loads=LoadSpec("uniform_random", {"total_tokens": 320, "seed": 3}),
        stop=StopRule.fixed(ROUNDS),
        replicas=2,
        probes=(_spec(probe_name),),
    )
    if not _loads_only(probe_name):
        with pytest.raises(ValueError, match="looped"):
            scenario.run(executor="batch")
        looped = scenario.run(executor="loop")
        assert len(looped.results) == 2
        return
    looped = scenario.run(executor="loop")
    batched = scenario.run(executor="batch")
    for replica in range(2):
        np.testing.assert_array_equal(
            looped.replica(replica).final_loads,
            batched.replica(replica).final_loads,
        )
        assert (
            looped.record(replica).summary
            == batched.record(replica).summary
        )


@pytest.mark.parametrize("probe_name", PROBES.names())
def test_probe_matrix_under_dynamics(probe_name):
    """The same matrix holds with an injector attached."""
    graph = _graph()
    loads = _loads(graph.num_nodes)
    spec = DynamicsSpec("random_churn", {"rate": 7, "seed": 4})
    summaries = {}
    for engine in ("dense", "structured"):
        if engine == "structured" and _dense_required(probe_name):
            continue
        result = Simulator(
            graph,
            make("send_floor"),
            loads,
            probes=(_spec(probe_name),),
            dynamics=spec.build(),
            engine=engine,
        ).run(ROUNDS)
        summaries[engine] = result.record.summary
    reference = next(iter(summaries.values()))
    for summary in summaries.values():
        assert summary == reference
    assert "tokens_departed" in reference
