"""Integration: every algorithm balances on every graph family.

A coarse acceptance grid — conservation, no unexpected negative loads,
and a sane final discrepancy for all (algorithm × graph) pairs.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.algorithms.registry import all_names, make
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.core.monitors import LoadBoundsMonitor
from repro.graphs import families


GRAPHS = {
    "expander": lambda: families.random_regular(20, 4, seed=23),
    "cycle": lambda: families.cycle(12),
    "torus": lambda: families.torus(4, 2),
    "hypercube": lambda: families.hypercube(4),
    "complete": lambda: families.complete(12),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("algorithm", all_names())
def test_balances_everywhere(graph_name, algorithm):
    graph = GRAPHS[graph_name]()
    n = graph.num_nodes
    tokens = n * 40
    monitor = LoadBoundsMonitor()
    simulator = Simulator(
        graph,
        make(algorithm, seed=3),
        point_mass(n, tokens),
        monitors=(monitor,),
    )
    rounds = 600 if graph_name == "cycle" else 300
    result = simulator.run(rounds)

    assert result.final_loads.sum() == tokens
    # Generous acceptance threshold: every scheme must get within a
    # small multiple of the [17] bound's d log n scale.
    assert result.final_discrepancy <= 6 * graph.degree + 10
    balancer = make(algorithm, seed=3)
    if balancer.properties.negative_load_safe:
        assert monitor.min_ever >= 0


@pytest.mark.parametrize("algorithm", all_names())
def test_fixed_point_when_perfectly_balanced(algorithm):
    """A perfectly divisible balanced vector stays balanced."""
    graph = families.random_regular(16, 4, seed=29)
    per_node = 4 * graph.total_degree
    loads = point_mass(16, 0) + per_node
    simulator = Simulator(graph, make(algorithm, seed=1), loads)
    result = simulator.run(40)
    assert result.final_discrepancy == 0
