"""Integration tests for Observations 2.2 and 3.2.

The paper's classification claims, verified end-to-end by running each
algorithm through the engine with the fairness monitors attached, on
several graph families and workloads.
"""

import pytest

from repro.algorithms import (
    RotorRouter,
    RotorRouterStar,
    SendFloor,
    SendRounded,
    effective_self_preference,
)
from repro.core.loads import bimodal, point_mass, uniform_random
from repro.graphs import families

from tests.helpers import run_monitored


GRAPHS = {
    "expander": lambda: families.random_regular(20, 4, seed=17),
    "cycle": lambda: families.cycle(14),
    "torus": lambda: families.torus(4, 2),
    "hypercube": lambda: families.hypercube(3),
}

WORKLOADS = {
    "point_mass": lambda n: point_mass(n, n * 31),
    "bimodal": lambda n: bimodal(n, 57, 3),
    "random": lambda n: uniform_random(n, n * 13, seed=5),
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("load_name", sorted(WORKLOADS))
class TestObservation22:
    """Observation 2.2 across graphs × workloads."""

    def test_send_floor_cumulatively_0_fair(self, graph_name, load_name):
        graph = GRAPHS[graph_name]()
        loads = WORKLOADS[load_name](graph.num_nodes)
        _, verdict, _, _ = run_monitored(
            graph, SendFloor(), loads, rounds=50
        )
        assert verdict.is_cumulatively_fair(0)

    def test_send_rounded_cumulatively_0_fair(self, graph_name, load_name):
        graph = GRAPHS[graph_name]()
        loads = WORKLOADS[load_name](graph.num_nodes)
        _, verdict, _, _ = run_monitored(
            graph, SendRounded(), loads, rounds=50
        )
        assert verdict.is_cumulatively_fair(0)

    def test_rotor_router_cumulatively_1_fair(self, graph_name, load_name):
        graph = GRAPHS[graph_name]()
        loads = WORKLOADS[load_name](graph.num_nodes)
        _, verdict, _, _ = run_monitored(
            graph, RotorRouter(), loads, rounds=50
        )
        assert verdict.is_cumulatively_fair(1)


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
class TestObservation32:
    """Observation 3.2: good s-balancer membership."""

    def test_rotor_router_star_good_1_balancer(self, graph_name):
        graph = GRAPHS[graph_name]()
        loads = point_mass(graph.num_nodes, graph.num_nodes * 31)
        _, verdict, _, _ = run_monitored(
            graph, RotorRouterStar(), loads, rounds=60, s=1
        )
        assert verdict.is_good_balancer

    def test_send_rounded_good_s_balancer_above_2d(self, graph_name):
        graph = GRAPHS[graph_name]()
        graph = graph.with_self_loops(2 * graph.degree + 2)
        s = effective_self_preference(graph.degree, graph.total_degree)
        assert s >= 1
        loads = point_mass(graph.num_nodes, graph.num_nodes * 31)
        _, verdict, _, _ = run_monitored(
            graph, SendRounded(), loads, rounds=60, s=s
        )
        assert verdict.is_good_balancer
