"""Shared test utilities."""

from __future__ import annotations

import numpy as np

from repro.core.engine import SimulationResult, Simulator
from repro.core.fairness import (
    ClassVerdict,
    CumulativeFairnessMonitor,
    FairnessMonitor,
    classify_run,
)
from repro.core.flows import FlowTracker
from repro.core.monitors import LoadBoundsMonitor


def run_monitored(
    graph,
    balancer,
    initial_loads,
    rounds: int,
    s: int = 1,
) -> tuple[SimulationResult, ClassVerdict, FlowTracker, LoadBoundsMonitor]:
    """Run with the full monitor suite; returns result + class verdict."""
    fairness = FairnessMonitor(s=s)
    cumulative = CumulativeFairnessMonitor()
    flows = FlowTracker()
    bounds = LoadBoundsMonitor()
    simulator = Simulator(
        graph,
        balancer,
        initial_loads,
        monitors=(fairness, cumulative, flows, bounds),
    )
    result = simulator.run(rounds)
    return result, classify_run(fairness, cumulative), flows, bounds


def assert_conserved(result: SimulationResult) -> None:
    assert result.final_loads.sum() == result.initial_loads.sum()


def spread_loads(n: int, seed: int, high: int = 100) -> np.ndarray:
    """Random nonnegative integer loads for ad-hoc cases."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, high, size=n).astype(np.int64)
