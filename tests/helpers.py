"""Shared test utilities: fixtures, builders, and hypothesis strategies.

This is the single home for test-support code — ad-hoc graph/load
builders, the monitored-run harness, and the hypothesis strategies the
property and differential suites share.  (It absorbed the former
``tests/property/strategies.py``; import everything from here.)
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.engine import SimulationResult, Simulator
from repro.core.fairness import (
    ClassVerdict,
    CumulativeFairnessMonitor,
    FairnessMonitor,
    classify_run,
)
from repro.core.flows import FlowTracker
from repro.core.monitors import LoadBoundsMonitor
from repro.graphs import families


def run_monitored(
    graph,
    balancer,
    initial_loads,
    rounds: int,
    s: int = 1,
) -> tuple[SimulationResult, ClassVerdict, FlowTracker, LoadBoundsMonitor]:
    """Run with the full monitor suite; returns result + class verdict."""
    fairness = FairnessMonitor(s=s)
    cumulative = CumulativeFairnessMonitor()
    flows = FlowTracker()
    bounds = LoadBoundsMonitor()
    simulator = Simulator(
        graph,
        balancer,
        initial_loads,
        monitors=(fairness, cumulative, flows, bounds),
    )
    result = simulator.run(rounds)
    return result, classify_run(fairness, cumulative), flows, bounds


def assert_conserved(result: SimulationResult) -> None:
    assert result.final_loads.sum() == result.initial_loads.sum()


def spread_loads(n: int, seed: int, high: int = 100) -> np.ndarray:
    """Random nonnegative integer loads for ad-hoc cases."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, high, size=n).astype(np.int64)


# ----------------------------------------------------------------------
# Hypothesis strategies (shared by the property and differential suites)
# ----------------------------------------------------------------------


@st.composite
def balancing_graphs(draw, max_self_loops: int = 8):
    """A small graph from a random family with a random d° >= d."""
    family = draw(
        st.sampled_from(
            ["cycle", "complete", "hypercube", "torus", "random_regular"]
        )
    )
    if family == "cycle":
        n = draw(st.integers(3, 16))
        base = families.cycle(n)
    elif family == "complete":
        n = draw(st.integers(3, 10))
        base = families.complete(n)
    elif family == "hypercube":
        dim = draw(st.integers(2, 4))
        base = families.hypercube(dim)
    elif family == "torus":
        side = draw(st.integers(3, 4))
        base = families.torus(side, 2)
    else:
        n = draw(st.sampled_from([8, 12, 16]))
        degree = draw(st.sampled_from([3, 4]))
        base = families.random_regular(n, degree, seed=draw(st.integers(0, 50)))
    loops = draw(
        st.integers(base.degree, base.degree + max_self_loops)
    )
    return base.with_self_loops(loops)


@st.composite
def load_vectors(draw, n: int, max_load: int = 200):
    """A nonnegative integer load vector of length n."""
    values = draw(
        st.lists(
            st.integers(0, max_load), min_size=n, max_size=n
        )
    )
    return np.array(values, dtype=np.int64)
