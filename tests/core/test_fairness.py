"""Unit tests for the fairness checkers (Definitions 2.1 / 3.1)."""

import numpy as np

from repro.core import fairness
from repro.core.fairness import (
    CumulativeFairnessMonitor,
    FairnessMonitor,
    ceil_share,
    classify_run,
    excess_tokens,
    floor_share,
    is_round_fair,
    self_preference_deficit,
    violates_ceil,
    violates_floor,
)


class TestShares:
    def test_floor_ceil(self):
        loads = np.array([0, 5, 8, 9])
        assert list(floor_share(loads, 4)) == [0, 1, 2, 2]
        assert list(ceil_share(loads, 4)) == [0, 2, 2, 3]

    def test_excess(self):
        loads = np.array([0, 5, 8, 9])
        assert list(excess_tokens(loads, 4)) == [0, 1, 0, 1]


class TestRoundChecks:
    def test_fair_sends_pass(self):
        loads = np.array([9])
        sends = np.array([[3, 3, 3]])  # wait: floor(9/3)=3 each
        assert is_round_fair(loads, sends, 3)

    def test_floor_violation(self):
        loads = np.array([9])
        sends = np.array([[2, 3, 4]])
        assert violates_floor(loads, sends, 3)[0]
        assert violates_ceil(loads, sends, 3)[0]
        assert not is_round_fair(loads, sends, 3)

    def test_ceil_violation_only(self):
        loads = np.array([7])
        sends = np.array([[2, 2, 4]])  # floor 2, ceil 3
        assert not violates_floor(loads, sends, 3)[0]
        assert violates_ceil(loads, sends, 3)[0]

    def test_self_preference_deficit_zero_when_satisfied(self):
        loads = np.array([7])  # d+ = 3, floor 2, ceil 3, e = 1
        sends = np.array([[2, 2, 3]])  # 1 original + 2 loops (degree 1)
        deficit = self_preference_deficit(loads, sends, 1, 3, s=1)
        assert deficit[0] == 0

    def test_self_preference_deficit_detected(self):
        loads = np.array([7])
        sends = np.array([[3, 2, 2]])  # ceiling went to the original edge
        deficit = self_preference_deficit(loads, sends, 1, 3, s=1)
        assert deficit[0] == 1

    def test_self_preference_vacuous_when_divisible(self):
        loads = np.array([6])
        sends = np.array([[2, 2, 2]])
        deficit = self_preference_deficit(loads, sends, 1, 3, s=2)
        assert deficit[0] == 0


class FakeGraph:
    """Minimal stand-in exposing degree/total_degree for monitors."""

    def __init__(self, n, degree, d_plus):
        self.num_nodes = n
        self.degree = degree
        self.total_degree = d_plus


class TestMonitors:
    def _feed(self, monitor, graph, rounds):
        monitor.start(graph, None, np.zeros(graph.num_nodes, np.int64))
        for t, (loads, sends) in enumerate(rounds, start=1):
            monitor.observe(t, loads, sends, loads)

    def test_fairness_monitor_clean_run(self):
        graph = FakeGraph(1, 1, 3)
        monitor = FairnessMonitor(s=1)
        self._feed(
            monitor,
            graph,
            [
                (np.array([7]), np.array([[2, 2, 3]])),
                (np.array([6]), np.array([[2, 2, 2]])),
            ],
        )
        assert monitor.always_at_least_floor
        assert monitor.always_round_fair
        assert monitor.always_self_preferring

    def test_fairness_monitor_flags_violations(self):
        graph = FakeGraph(1, 1, 3)
        monitor = FairnessMonitor(s=1, keep_rounds=True)
        self._feed(
            monitor,
            graph,
            [(np.array([7]), np.array([[3, 2, 2]]))],
        )
        assert monitor.always_round_fair  # 3 is the ceiling: still fair
        assert not monitor.always_self_preferring
        assert monitor.rounds[0].self_preference_deficit == 1

    def test_cumulative_monitor_spread(self):
        graph = FakeGraph(1, 2, 4)
        monitor = CumulativeFairnessMonitor()
        monitor.start(graph, None, np.zeros(1, np.int64))
        monitor.observe(
            1, np.array([4]), np.array([[2, 1, 1, 0]]), np.array([4])
        )
        assert monitor.observed_delta == 1
        monitor.observe(
            2, np.array([4]), np.array([[2, 1, 1, 0]]), np.array([4])
        )
        assert monitor.observed_delta == 2
        assert monitor.is_cumulatively_fair(2)
        assert not monitor.is_cumulatively_fair(1)


class TestClassVerdict:
    def test_good_balancer_requires_everything(self):
        graph = FakeGraph(1, 1, 3)
        fair = FairnessMonitor(s=1)
        cumulative = CumulativeFairnessMonitor()
        fair.start(graph, None, np.zeros(1, np.int64))
        cumulative.start(graph, None, np.zeros(1, np.int64))
        loads, sends = np.array([7]), np.array([[2, 2, 3]])
        fair.observe(1, loads, sends, loads)
        cumulative.observe(1, loads, sends, loads)
        verdict = classify_run(fair, cumulative)
        assert verdict.is_cumulatively_fair(0)
        assert verdict.is_good_balancer

    def test_not_good_without_self_preference(self):
        graph = FakeGraph(1, 1, 3)
        fair = FairnessMonitor(s=1)
        cumulative = CumulativeFairnessMonitor()
        fair.start(graph, None, np.zeros(1, np.int64))
        cumulative.start(graph, None, np.zeros(1, np.int64))
        loads, sends = np.array([7]), np.array([[3, 2, 2]])
        fair.observe(1, loads, sends, loads)
        cumulative.observe(1, loads, sends, loads)
        verdict = classify_run(fair, cumulative)
        assert not verdict.is_good_balancer


def test_module_exports():
    assert hasattr(fairness, "ClassVerdict")
