"""Unit tests for the Balancer base class and helpers."""

import numpy as np
import pytest

from repro.core.balancer import (
    AlgorithmProperties,
    Balancer,
    split_extras_over_self_loops,
)
from repro.core.errors import BindingError
from repro.graphs import families


class Dummy(Balancer):
    name = "dummy"

    def sends(self, loads, t):
        graph = self.graph
        return np.zeros(
            (graph.num_nodes, graph.total_degree), dtype=np.int64
        )


class TestLifecycle:
    def test_unbound_access_raises(self):
        with pytest.raises(BindingError, match="not bound"):
            Dummy().graph

    def test_bind_returns_self(self):
        graph = families.cycle(4)
        balancer = Dummy()
        assert balancer.bind(graph) is balancer
        assert balancer.is_bound
        assert balancer.graph is graph

    def test_rebind_to_other_graph(self):
        balancer = Dummy()
        balancer.bind(families.cycle(4))
        other = families.cycle(6)
        balancer.bind(other)
        assert balancer.graph is other

    def test_describe_includes_flags(self):
        info = Dummy().describe()
        assert info["name"] == "dummy"
        assert info["deterministic"] is True


class TestProperties:
    def test_flags_string(self):
        props = AlgorithmProperties(True, False, True, False)
        assert props.flags() == "D - NL -"

    def test_as_dict(self):
        props = AlgorithmProperties(True, True, True, True)
        assert all(props.as_dict().values())


class TestSplitExtras:
    def test_even_split(self):
        sends = np.zeros((2, 5), dtype=np.int64)  # degree 2, 3 loops
        extras = np.array([6, 0])
        split_extras_over_self_loops(sends, extras, degree=2)
        assert list(sends[0, 2:]) == [2, 2, 2]
        assert list(sends[1, 2:]) == [0, 0, 0]

    def test_uneven_split_prefers_first_loops(self):
        sends = np.zeros((1, 5), dtype=np.int64)
        split_extras_over_self_loops(sends, np.array([4]), degree=2)
        assert list(sends[0, 2:]) == [2, 1, 1]

    def test_no_loops_with_zero_extras_ok(self):
        sends = np.zeros((1, 2), dtype=np.int64)
        split_extras_over_self_loops(sends, np.array([0]), degree=2)
        assert sends.sum() == 0

    def test_no_loops_with_extras_raises(self):
        sends = np.zeros((1, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            split_extras_over_self_loops(sends, np.array([1]), degree=2)

    def test_preserves_base(self):
        sends = np.full((1, 4), 3, dtype=np.int64)
        split_extras_over_self_loops(sends, np.array([3]), degree=2)
        assert list(sends[0]) == [3, 3, 5, 4]
