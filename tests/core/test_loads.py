"""Unit tests for initial load generators and validation."""

import numpy as np
import pytest

from repro.core import loads
from repro.core.errors import InvalidLoadVector


class TestValidate:
    def test_accepts_int_list(self):
        out = loads.validate_loads(np.array([1, 2, 3]))
        assert out.dtype == np.int64

    def test_rejects_2d(self):
        with pytest.raises(InvalidLoadVector):
            loads.validate_loads(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(InvalidLoadVector):
            loads.validate_loads(np.array([], dtype=np.int64))

    def test_rejects_fractional(self):
        with pytest.raises(InvalidLoadVector, match="indivisible"):
            loads.validate_loads(np.array([1.5, 2.0]))

    def test_accepts_integral_floats(self):
        out = loads.validate_loads(np.array([1.0, 2.0]))
        assert out.dtype == np.int64

    def test_rejects_negative(self):
        with pytest.raises(InvalidLoadVector, match="nonnegative"):
            loads.validate_loads(np.array([1, -1]))

    def test_allow_negative_flag(self):
        out = loads.validate_loads(
            np.array([1, -1]), allow_negative=True
        )
        assert out[1] == -1


class TestGenerators:
    def test_point_mass(self):
        vec = loads.point_mass(5, 100, node=2)
        assert vec.sum() == 100
        assert vec[2] == 100
        assert loads.initial_discrepancy(vec) == 100

    def test_point_mass_bad_node(self):
        with pytest.raises(InvalidLoadVector):
            loads.point_mass(5, 10, node=9)

    def test_point_mass_negative_tokens(self):
        with pytest.raises(InvalidLoadVector):
            loads.point_mass(5, -1)

    def test_bimodal(self):
        vec = loads.bimodal(6, 10, 2)
        assert list(vec) == [10, 10, 10, 2, 2, 2]
        assert loads.initial_discrepancy(vec) == 8

    def test_bimodal_rejects_inverted(self):
        with pytest.raises(InvalidLoadVector):
            loads.bimodal(4, 1, 5)

    def test_uniform_random_total(self):
        vec = loads.uniform_random(10, 1000, seed=4)
        assert vec.sum() == 1000
        assert vec.min() >= 0

    def test_uniform_random_reproducible(self):
        a = loads.uniform_random(10, 500, seed=7)
        b = loads.uniform_random(10, 500, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_balanced(self):
        vec = loads.balanced(4, 3)
        assert loads.initial_discrepancy(vec) == 0

    def test_linear_gradient(self):
        vec = loads.linear_gradient(5, step=2, base=1)
        assert list(vec) == [1, 3, 5, 7, 9]

    def test_random_spikes(self):
        vec = loads.random_spikes(20, 3, 50, seed=1, base=5)
        assert (vec == 55).sum() == 3
        assert (vec == 5).sum() == 17

    def test_random_spikes_bad_count(self):
        with pytest.raises(InvalidLoadVector):
            loads.random_spikes(5, 9, 1, seed=0)

    def test_average_load(self):
        assert loads.average_load(np.array([1, 2, 3])) == 2.0
