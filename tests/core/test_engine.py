"""Unit tests for the simulation engine's round semantics and guards."""

import numpy as np
import pytest

from repro.algorithms import RotorRouter, SendFloor
from repro.core.balancer import Balancer
from repro.core.engine import Simulator, simulate
from repro.core.errors import (
    InvalidSendMatrix,
    NegativeLoadError,
)
from repro.graphs import families


class SendNothing(Balancer):
    """Keeps everything — identity dynamics."""

    name = "send_nothing"

    def sends(self, loads, t):
        graph = self.graph
        return np.zeros(
            (graph.num_nodes, graph.total_degree), dtype=np.int64
        )


class SendOneForward(Balancer):
    """Every node pushes one token over port 0 (if it has one)."""

    name = "send_one_forward"

    def sends(self, loads, t):
        graph = self.graph
        sends = np.zeros(
            (graph.num_nodes, graph.total_degree), dtype=np.int64
        )
        sends[:, 0] = np.minimum(loads, 1)
        return sends


class Overdraw(Balancer):
    name = "overdraw"

    def sends(self, loads, t):
        graph = self.graph
        return np.full(
            (graph.num_nodes, graph.total_degree), 10, dtype=np.int64
        )


class BadShape(Balancer):
    name = "bad_shape"

    def sends(self, loads, t):
        return np.zeros((1, 1), dtype=np.int64)


class NegativeSend(Balancer):
    name = "negative_send"

    def sends(self, loads, t):
        graph = self.graph
        sends = np.zeros(
            (graph.num_nodes, graph.total_degree), dtype=np.int64
        )
        sends[0, 0] = -1
        return sends


class FloatSend(Balancer):
    name = "float_send"

    def sends(self, loads, t):
        graph = self.graph
        return np.zeros(
            (graph.num_nodes, graph.total_degree), dtype=np.float64
        )


class TestRoundSemantics:
    def test_identity_dynamics(self, cycle12):
        loads = np.arange(12, dtype=np.int64)
        simulator = Simulator(cycle12, SendNothing(), loads)
        after = simulator.step()
        np.testing.assert_array_equal(after, loads)

    def test_one_token_rotation(self):
        # Port 0 of node 0 points to its smallest neighbor (node 1).
        graph = families.cycle(5, num_self_loops=1)
        loads = np.array([1, 0, 0, 0, 0], dtype=np.int64)
        simulator = Simulator(graph, SendOneForward(), loads)
        after = simulator.step()
        assert after.sum() == 1
        assert after[graph.port_target(0, 0)] == 1

    def test_self_loop_tokens_return(self):
        graph = families.cycle(4, num_self_loops=2)

        class SelfLoopOnly(Balancer):
            name = "self_loop_only"

            def sends(self, loads, t):
                sends = np.zeros((4, 4), dtype=np.int64)
                sends[:, 2] = loads  # everything onto the first loop
                return sends

        loads = np.array([3, 1, 4, 1], dtype=np.int64)
        simulator = Simulator(graph, SelfLoopOnly(), loads)
        after = simulator.step()
        np.testing.assert_array_equal(after, loads)

    def test_round_counter_starts_at_one(self, cycle12):
        simulator = Simulator(
            cycle12, SendNothing(), np.zeros(12, dtype=np.int64)
        )
        assert simulator.round == 1
        simulator.step()
        assert simulator.round == 2

    def test_conservation_across_run(self, expander24):
        loads = np.arange(24, dtype=np.int64) * 3
        result = simulate(expander24, RotorRouter(), loads, 50)
        assert result.final_loads.sum() == loads.sum()

    def test_history_recording(self, expander24):
        loads = np.zeros(24, dtype=np.int64)
        loads[0] = 240
        simulator = Simulator(expander24, SendFloor(), loads)
        simulator.run(10)
        assert len(simulator.discrepancy_history) == 11
        assert simulator.discrepancy_history[0] == 240

    def test_history_disabled(self, expander24):
        simulator = Simulator(
            expander24,
            SendFloor(),
            np.ones(24, dtype=np.int64),
            record_history=False,
        )
        simulator.run(5)
        assert simulator.discrepancy_history == []


class TestGuards:
    def test_overdraw_raises(self, cycle12):
        simulator = Simulator(
            cycle12, Overdraw(), np.ones(12, dtype=np.int64)
        )
        with pytest.raises(NegativeLoadError, match="sent"):
            simulator.step()

    def test_overdraw_allowed_when_declared(self, cycle12):
        balancer = Overdraw()
        balancer.allows_negative = True
        simulator = Simulator(
            cycle12, balancer, np.ones(12, dtype=np.int64)
        )
        after = simulator.step()
        assert after.sum() == 12  # still conserved

    def test_bad_shape_raises(self, cycle12):
        simulator = Simulator(
            cycle12, BadShape(), np.ones(12, dtype=np.int64)
        )
        with pytest.raises(InvalidSendMatrix, match="shape"):
            simulator.step()

    def test_negative_send_raises(self, cycle12):
        simulator = Simulator(
            cycle12, NegativeSend(), np.ones(12, dtype=np.int64)
        )
        with pytest.raises(InvalidSendMatrix, match="negative"):
            simulator.step()

    def test_float_send_raises(self, cycle12):
        simulator = Simulator(
            cycle12, FloatSend(), np.ones(12, dtype=np.int64)
        )
        with pytest.raises(InvalidSendMatrix, match="integer"):
            simulator.step()

    def test_wrong_load_length(self, cycle12):
        with pytest.raises(InvalidSendMatrix, match="entries"):
            Simulator(cycle12, SendNothing(), np.ones(5, dtype=np.int64))


class TestRunUntil:
    def test_run_to_discrepancy(self, expander24):
        loads = np.zeros(24, dtype=np.int64)
        loads[0] = 2400
        simulator = Simulator(expander24, RotorRouter(), loads)
        result = simulator.run_to_discrepancy(10, max_rounds=5000)
        assert result.stopped_early
        assert result.final_discrepancy <= 10

    def test_run_until_immediate(self, expander24):
        simulator = Simulator(
            expander24, SendFloor(), np.ones(24, dtype=np.int64)
        )
        result = simulator.run_until(lambda x: True, max_rounds=10)
        assert result.rounds_executed == 0
        assert result.stopped_early

    def test_run_until_budget_exhausted(self, expander24):
        simulator = Simulator(
            expander24, SendNothing(), np.ones(24, dtype=np.int64)
        )
        result = simulator.run_until(lambda x: False, max_rounds=7)
        assert result.rounds_executed == 7
        assert not result.stopped_early

    def test_result_summary(self, expander24):
        result = simulate(
            expander24, SendFloor(), np.ones(24, dtype=np.int64), 3
        )
        summary = result.summary()
        assert summary["rounds"] == 3
        assert summary["final_discrepancy"] == 0


class TestCumulativeRoundsReporting:
    """`rounds_executed` is cumulative across run/run_until calls."""

    def test_run_after_run_accumulates(self, expander24):
        simulator = Simulator(
            expander24, SendFloor(), np.full(24, 5, dtype=np.int64)
        )
        simulator.run(4)
        result = simulator.run(3)
        assert result.rounds_executed == 7

    def test_run_until_early_return_is_cumulative(self, expander24):
        simulator = Simulator(
            expander24, SendFloor(), np.full(24, 5, dtype=np.int64)
        )
        simulator.run(4)
        result = simulator.run_until(lambda loads: True, max_rounds=10)
        assert result.stopped_early
        assert result.rounds_executed == 4

    def test_run_until_counts_all_rounds(self, expander24):
        simulator = Simulator(
            expander24, SendFloor(), np.full(24, 5, dtype=np.int64)
        )
        simulator.run(2)
        result = simulator.run_until(lambda loads: False, max_rounds=3)
        assert result.rounds_executed == 5
        assert not result.stopped_early
