"""Unit tests for the structured-sends protocol and engines."""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.algorithms.rotor_router import RotorRouter
from repro.algorithms.send_floor import SendFloor
from repro.core.engine import Simulator
from repro.core.errors import InvalidSendMatrix, NegativeLoadError
from repro.core.structured import StructuredRound
from repro.graphs import families

STRUCTURED_ALGORITHMS = ["send_floor", "send_rounded", "rotor_router"]


def _loads_for(graph, seed=7, high=200):
    rng = np.random.default_rng(seed)
    return rng.integers(0, high, graph.num_nodes).astype(np.int64)


class TestToDenseParity:
    """sends_structured().to_dense() == sends(), bit for bit, per round."""

    @pytest.mark.parametrize("algorithm", STRUCTURED_ALGORITHMS)
    def test_multi_round_parity(self, expander24, algorithm):
        dense_balancer = make(algorithm).bind(expander24)
        structured_balancer = make(algorithm).bind(expander24)
        loads = _loads_for(expander24)
        for t in range(1, 8):
            dense = dense_balancer.sends(loads, t)
            compact = structured_balancer.sends_structured(loads, t)
            np.testing.assert_array_equal(
                compact.to_dense(expander24), dense
            )
            # Advance via an independent simulator so both balancers
            # see the same trajectory.
            loads = Simulator(
                expander24, make(algorithm), loads, engine="dense"
            ).step()

    def test_no_self_loops_floor(self):
        graph = families.cycle(9, num_self_loops=0)
        balancer = make("send_floor").bind(graph)
        loads = _loads_for(graph)
        compact = balancer.sends_structured(loads, 1)
        assert compact.loop_base is None
        assert compact.window is None
        np.testing.assert_array_equal(
            compact.to_dense(graph), balancer.sends(loads, 1)
        )
        # The excess x mod d+ stays put as the remainder.
        remainder = compact.remainder(graph, loads)
        np.testing.assert_array_equal(remainder, loads % graph.degree)

    def test_rotor_custom_orders_and_rotors(self):
        graph = families.cycle(12)
        rng = np.random.default_rng(5)
        orders = np.stack(
            [rng.permutation(graph.total_degree) for _ in range(12)]
        )
        rotors = rng.integers(0, graph.total_degree, 12)
        dense_balancer = RotorRouter(orders, rotors).bind(graph)
        structured_balancer = RotorRouter(orders, rotors).bind(graph)
        loads = _loads_for(graph)
        dense = dense_balancer.sends(loads, 1)
        compact = structured_balancer.sends_structured(loads, 1)
        np.testing.assert_array_equal(compact.to_dense(graph), dense)
        np.testing.assert_array_equal(
            dense_balancer.rotors, structured_balancer.rotors
        )


class TestRemainder:
    @pytest.mark.parametrize("algorithm", STRUCTURED_ALGORITHMS)
    def test_matches_dense_remainder(self, torus9, algorithm):
        balancer = make(algorithm).bind(torus9)
        loads = _loads_for(torus9)
        compact = balancer.sends_structured(loads, 1)
        dense = compact.to_dense(torus9)
        np.testing.assert_array_equal(
            compact.remainder(torus9, loads),
            loads - dense.sum(axis=1),
        )

    def test_outflow_and_kept_split(self, cycle12):
        balancer = make("rotor_router").bind(cycle12)
        loads = _loads_for(cycle12)
        compact = balancer.sends_structured(loads, 1)
        dense = compact.to_dense(cycle12)
        degree = cycle12.degree
        np.testing.assert_array_equal(
            compact.edge_outflow(cycle12), dense[:, :degree].sum(axis=1)
        )
        np.testing.assert_array_equal(
            compact.kept_tokens(cycle12), dense[:, degree:].sum(axis=1)
        )


class TestValidation:
    def test_negative_share_rejected(self, cycle12):
        loads = np.full(12, 10, dtype=np.int64)
        compact = StructuredRound(
            edge_share=np.full(12, -1, dtype=np.int64)
        )
        with pytest.raises(InvalidSendMatrix, match="negative"):
            compact.validate(cycle12, loads)

    def test_wrong_shape_rejected(self, cycle12):
        loads = np.full(12, 10, dtype=np.int64)
        compact = StructuredRound(edge_share=np.zeros(5, dtype=np.int64))
        with pytest.raises(InvalidSendMatrix, match="shape"):
            compact.validate(cycle12, loads)

    def test_float_share_rejected(self, cycle12):
        loads = np.full(12, 10, dtype=np.int64)
        compact = StructuredRound(edge_share=np.zeros(12))
        with pytest.raises(InvalidSendMatrix, match="integer"):
            compact.validate(cycle12, loads)

    def test_loop_ceil_beyond_loops_rejected(self, cycle12):
        loads = np.full(12, 10, dtype=np.int64)
        compact = StructuredRound(
            edge_share=np.zeros(12, dtype=np.int64),
            loop_base=np.zeros(12, dtype=np.int64),
            loop_ceil=np.full(
                12, cycle12.num_self_loops + 1, dtype=np.int64
            ),
        )
        with pytest.raises(InvalidSendMatrix, match="loop_ceil"):
            compact.validate(cycle12, loads)

    def test_loop_tokens_without_loops_rejected(self):
        graph = families.cycle(9, num_self_loops=0)
        loads = np.full(9, 10, dtype=np.int64)
        compact = StructuredRound(
            edge_share=np.zeros(9, dtype=np.int64),
            loop_base=np.ones(9, dtype=np.int64),
        )
        with pytest.raises(InvalidSendMatrix, match="no self-loops"):
            compact.validate(graph, loads)


class _OverdrawingStructured(SendFloor):
    """A structured balancer that claims more tokens than it holds."""

    def sends_structured(self, loads, t):
        compact = super().sends_structured(loads, t)
        compact.edge_share = compact.edge_share + loads.max() + 1
        return compact


class TestEngineSelection:
    def test_auto_prefers_structured(self, cycle12):
        simulator = Simulator(
            cycle12, make("send_floor"), np.full(12, 5, dtype=np.int64)
        )
        assert simulator.engine == "structured"

    def test_auto_falls_back_for_dense_only_balancers(self, expander24):
        simulator = Simulator(
            expander24,
            make("continuous_mimicking"),
            np.full(24, 5, dtype=np.int64),
        )
        assert simulator.engine == "dense"

    def test_monitors_force_dense(self, cycle12):
        from repro.core.monitors import LoadBoundsMonitor

        simulator = Simulator(
            cycle12,
            make("send_floor"),
            np.full(12, 5, dtype=np.int64),
            monitors=(LoadBoundsMonitor(),),
        )
        assert simulator.engine == "dense"

    def test_structured_with_monitors_rejected(self, cycle12):
        from repro.core.monitors import LoadBoundsMonitor

        with pytest.raises(ValueError, match="monitors"):
            Simulator(
                cycle12,
                make("send_floor"),
                np.full(12, 5, dtype=np.int64),
                monitors=(LoadBoundsMonitor(),),
                engine="structured",
            )

    def test_structured_unsupported_balancer_rejected(self, expander24):
        with pytest.raises(ValueError, match="structured"):
            Simulator(
                expander24,
                make("continuous_mimicking"),
                np.full(24, 5, dtype=np.int64),
                engine="structured",
            )

    def test_unknown_engine_rejected(self, cycle12):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(
                cycle12,
                make("send_floor"),
                np.full(12, 5, dtype=np.int64),
                engine="warp",
            )


class TestStructuredEngineInvariants:
    def test_overdraw_raises(self, cycle12):
        simulator = Simulator(
            cycle12,
            _OverdrawingStructured(),
            np.full(12, 3, dtype=np.int64),
            engine="structured",
            validate_every_round=False,
        )
        with pytest.raises(NegativeLoadError, match="does not allow"):
            simulator.step()

    @pytest.mark.parametrize("algorithm", STRUCTURED_ALGORITHMS)
    def test_conservation_and_history(self, hypercube16, algorithm):
        loads = _loads_for(hypercube16)
        result = Simulator(
            hypercube16, make(algorithm), loads, engine="structured"
        ).run(30)
        assert result.final_loads.sum() == loads.sum()
        assert len(result.discrepancy_history) == 31


class TestLateAttach:
    """Attach-after-construction is `attach()`; list mutation raises."""

    def test_append_to_monitors_raises_clear_error(self, cycle12):
        from repro.core.monitors import DiscrepancyRecorder

        simulator = Simulator(
            cycle12, make("send_floor"), _loads_for(cycle12)
        )
        assert simulator.engine == "structured"
        with pytest.raises(TypeError, match="attach"):
            simulator.monitors.append(DiscrepancyRecorder())

    def test_attach_starts_probe_and_keeps_structured(self, cycle12):
        from repro.core.monitors import DiscrepancyRecorder

        simulator = Simulator(
            cycle12, make("send_floor"), _loads_for(cycle12)
        )
        probe = simulator.attach(DiscrepancyRecorder())
        assert simulator.engine == "structured"  # loads-only probe
        simulator.run(5)
        assert len(probe.history) == 6  # started with current loads
        assert probe.history == simulator.discrepancy_history

    def test_attach_mid_run_observes_from_now_on(self, cycle12):
        from repro.core.monitors import DiscrepancyRecorder

        simulator = Simulator(
            cycle12, make("send_floor"), _loads_for(cycle12)
        )
        simulator.run(3)
        probe = simulator.attach(DiscrepancyRecorder())
        simulator.run(4)
        assert len(probe.history) == 5  # attach-time state + 4 rounds
        assert probe.history == simulator.discrepancy_history[3:]

    def test_attach_dense_probe_downgrades_auto_engine(self, cycle12):
        from repro.core.monitors import Monitor

        class DenseOnly(Monitor):
            def __init__(self):
                self.seen = 0

            def observe(self, t, loads_before, sends, loads_after):
                assert sends.ndim == 2
                self.seen += 1

        simulator = Simulator(
            cycle12, make("send_floor"), _loads_for(cycle12)
        )
        assert simulator.engine == "structured"
        probe = simulator.attach(DenseOnly())
        assert simulator.engine == "dense"
        simulator.run(4)
        assert probe.seen == 4

    def test_attach_dense_probe_on_explicit_structured_raises(
        self, cycle12
    ):
        from repro.core.monitors import Monitor

        simulator = Simulator(
            cycle12,
            make("send_floor"),
            _loads_for(cycle12),
            engine="structured",
        )
        with pytest.raises(ValueError, match="dense sends"):
            simulator.attach(Monitor())
