"""Unit tests for the Section 3 potential functions."""

import numpy as np
import pytest

from repro.algorithms import RotorRouterStar, SendRounded
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.core.potentials import (
    PotentialMonitor,
    final_discrepancy_bound,
    phi,
    phi_prime,
    phi_profile,
    potential_drop,
    potential_drop_prime,
    threshold_c0,
)
from repro.graphs import families


class TestDefinitions:
    def test_phi_counts_tokens_above_threshold(self):
        loads = np.array([10, 3, 8])
        # c*d+ = 6: max(10-6,0)+max(3-6,0)+max(8-6,0) = 4+0+2
        assert phi(loads, c=2, d_plus=3) == 6

    def test_phi_zero_when_all_below(self):
        assert phi(np.array([1, 2]), c=1, d_plus=5) == 0

    def test_phi_prime_counts_gaps(self):
        loads = np.array([10, 3, 8])
        # c*d+ + s = 6 + 2 = 8: gaps 0, 5, 0
        assert phi_prime(loads, c=2, d_plus=3, s=2) == 5

    def test_phi_profile_decreasing_in_c(self):
        loads = np.array([9, 9, 1])
        profile = phi_profile(loads, d_plus=2, c_max=5)
        assert all(a >= b for a, b in zip(profile, profile[1:]))

    def test_thresholds(self):
        c0 = threshold_c0(average=10.0, d_plus=4, d_self=2, delta=1)
        assert c0 * 4 >= 10 + 4 + 4 + 2

    def test_final_bound(self):
        assert final_discrepancy_bound(12, 6, delta=1) == 3 * 12 + 24


class TestDropFormulas:
    def test_drop_on_downward_crossing(self):
        before = np.array([10])
        after = np.array([5])
        # c*d+ = 6, s = 2: min(10, 8) - max(5, 6) = 8 - 6 = 2
        assert potential_drop(before, after, c=2, d_plus=3, s=2) == 2

    def test_no_drop_when_not_crossing(self):
        before = np.array([10])
        after = np.array([11])
        assert potential_drop(before, after, c=2, d_plus=3, s=2) == 0

    def test_drop_prime_on_upward_crossing(self):
        before = np.array([5])
        after = np.array([10])
        # climbing through [6, 8]: min(10,8) - max(5,6) = 2
        assert potential_drop_prime(before, after, c=2, d_plus=3, s=2) == 2

    def test_drop_prime_zero_above_band(self):
        before = np.array([9])
        after = np.array([12])
        assert potential_drop_prime(before, after, c=2, d_plus=3, s=2) == 0


class TestMonitorOnRealRuns:
    @pytest.mark.parametrize(
        "balancer_factory",
        [RotorRouterStar, SendRounded],
        ids=["rotor_router_star", "send_rounded"],
    )
    def test_monotone_on_good_balancers(self, balancer_factory):
        """Lemmas 3.5/3.7: φ and φ' never increase for good s-balancers."""
        graph = families.random_regular(24, 4, seed=2, num_self_loops=8)
        initial = point_mass(24, 24 * 48)
        average = initial.sum() / 24
        c_center = int(average // graph.total_degree)
        c_values = [max(c_center - 1, 0), c_center, c_center + 1]
        monitor = PotentialMonitor(c_values, s=1)
        simulator = Simulator(
            graph, balancer_factory(), initial, monitors=(monitor,)
        )
        simulator.run(150)
        assert monitor.all_monotone()

    def test_histories_have_expected_length(self):
        graph = families.cycle(8)
        monitor = PotentialMonitor([1], s=1)
        simulator = Simulator(
            graph, RotorRouterStar(), point_mass(8, 80), monitors=(monitor,)
        )
        simulator.run(9)
        assert len(monitor.phi_history[1]) == 10
        assert len(monitor.phi_prime_history[1]) == 10

    def test_phi_reaches_zero_after_balancing(self):
        graph = families.random_regular(16, 4, seed=5)
        initial = point_mass(16, 16 * 32)
        average = 32
        c_high = average // graph.total_degree + 3
        monitor = PotentialMonitor([c_high], s=1)
        simulator = Simulator(
            graph, RotorRouterStar(), initial, monitors=(monitor,)
        )
        simulator.run(400)
        assert monitor.phi_history[c_high][-1] == 0
