"""Unit tests for the monitor framework."""

import numpy as np

from repro.algorithms import RotorRouter, SendFloor
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.core.monitors import (
    DiscrepancyRecorder,
    LoadBoundsMonitor,
    PeriodDetector,
    TrajectoryRecorder,
)
from repro.lower_bounds import build_rotor_alternating_instance
from repro.graphs import families


class TestDiscrepancyRecorder:
    def test_records_initial_and_rounds(self, expander24):
        recorder = DiscrepancyRecorder()
        simulator = Simulator(
            expander24,
            SendFloor(),
            point_mass(24, 240),
            monitors=(recorder,),
        )
        simulator.run(5)
        assert len(recorder.history) == 6
        assert recorder.history[0] == 240
        assert recorder.final == recorder.history[-1]
        assert recorder.minimum <= recorder.history[0]

    def test_matches_engine_history(self, expander24):
        recorder = DiscrepancyRecorder()
        simulator = Simulator(
            expander24,
            RotorRouter(),
            point_mass(24, 480),
            monitors=(recorder,),
        )
        simulator.run(20)
        assert recorder.history == simulator.discrepancy_history


class TestLoadBoundsMonitor:
    def test_tracks_extremes(self, expander24):
        monitor = LoadBoundsMonitor()
        simulator = Simulator(
            expander24,
            SendFloor(),
            point_mass(24, 240),
            monitors=(monitor,),
        )
        simulator.run(10)
        assert monitor.max_ever == 240
        assert monitor.min_ever == 0
        assert not monitor.went_negative


class TestTrajectoryRecorder:
    def test_records_with_stride(self, cycle12):
        recorder = TrajectoryRecorder(stride=2)
        simulator = Simulator(
            cycle12,
            SendFloor(),
            point_mass(12, 120),
            monitors=(recorder,),
        )
        simulator.run(6)
        assert recorder.rounds == [0, 2, 4, 6]
        stacked = recorder.as_array()
        assert stacked.shape == (4, 12)
        np.testing.assert_array_equal(stacked[0], point_mass(12, 120))

    def test_rejects_bad_stride(self):
        import pytest

        with pytest.raises(ValueError):
            TrajectoryRecorder(stride=0)


class TestPeriodDetector:
    def test_detects_period_two(self):
        graph = families.cycle(9, num_self_loops=0)
        instance = build_rotor_alternating_instance(graph)
        detector = PeriodDetector()
        simulator = Simulator(
            graph,
            instance.balancer,
            instance.initial_loads,
            monitors=(detector,),
        )
        simulator.run(6)
        assert detector.period == 2

    def test_detects_fixed_point(self, expander24):
        detector = PeriodDetector()
        simulator = Simulator(
            expander24,
            SendFloor(),
            np.full(24, 5, dtype=np.int64),
            monitors=(detector,),
        )
        simulator.run(3)
        assert detector.period == 1
        assert detector.first_repeat_round == 1
