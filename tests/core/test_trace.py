"""Unit tests for the columnar Trace / RunRecord model."""

import numpy as np
import pytest

from repro.core.trace import (
    RunRecord,
    SamplingSchedule,
    Trace,
    build_record,
)


class TestSamplingSchedule:
    def test_every_stride(self):
        schedule = SamplingSchedule.every(3)
        sampled = [t for t in range(10) if schedule.wants(t)]
        assert sampled == [0, 3, 6, 9]

    def test_every_default_is_full_resolution(self):
        schedule = SamplingSchedule.every()
        assert all(schedule.wants(t) for t in range(20))

    def test_geometric_base_two(self):
        schedule = SamplingSchedule.geometric(2.0)
        sampled = [t for t in range(70) if schedule.wants(t)]
        assert sampled == [0, 1, 2, 4, 8, 16, 32, 64]

    def test_geometric_hits_exact_powers(self):
        # regression: math.log(1000, 10) == 2.999...96 used to skip
        # exact power-of-base boundaries
        schedule = SamplingSchedule.geometric(10.0)
        assert schedule.wants(1000)
        assert schedule.wants(10**6)
        two = SamplingSchedule.geometric(2.0)
        for k in range(1, 60):
            assert two.wants(2**k)
            assert not two.wants(2**k + 1) or k == 0

    def test_boundary_only_initial(self):
        schedule = SamplingSchedule.boundary()
        assert schedule.wants(0)
        assert not any(schedule.wants(t) for t in range(1, 50))

    def test_round_trip(self):
        for schedule in (
            SamplingSchedule.every(4),
            SamplingSchedule.geometric(3.0),
            SamplingSchedule.boundary(),
        ):
            assert (
                SamplingSchedule.from_dict(schedule.to_dict()) == schedule
            )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="kind"):
            SamplingSchedule(kind="fibonacci")
        with pytest.raises(ValueError, match="stride"):
            SamplingSchedule.every(0)
        with pytest.raises(ValueError, match="base"):
            SamplingSchedule.geometric(1.0)


class TestTrace:
    def test_columns_with_independent_rounds(self):
        trace = Trace()
        trace.add_column("a", [0, 1, 2], [10, 9, 8])
        trace.add_column("b", [0, 2], [5.0, 4.0])
        assert trace.names() == ["a", "b"]
        np.testing.assert_array_equal(trace.column("a"), [10, 9, 8])
        assert trace.rounds("b") == [0, 2]

    def test_to_rows_outer_joins_on_round(self):
        trace = Trace()
        trace.add_column("a", [0, 1, 2], [10, 9, 8])
        trace.add_column("b", [0, 2], [5, 4])
        rows = trace.to_rows()
        assert rows == [
            {"round": 0, "a": 10, "b": 5},
            {"round": 1, "a": 9, "b": None},
            {"round": 2, "a": 8, "b": 4},
        ]

    def test_round_trip(self):
        trace = Trace()
        trace.add_column("discrepancy", [0, 1], [12, 6])
        rebuilt = Trace.from_dict(trace.to_dict())
        assert rebuilt.names() == ["discrepancy"]
        assert rebuilt.series("discrepancy") == ([0, 1], [12, 6])

    def test_numpy_values_become_plain(self):
        trace = Trace()
        trace.add_column(
            "x", [0], [np.int64(3)]
        )
        assert isinstance(trace.series("x")[1][0], int)

    def test_mismatched_lengths_rejected(self):
        trace = Trace()
        with pytest.raises(ValueError, match="rounds"):
            trace.add_column("a", [0, 1], [1])

    def test_duplicate_column_rejected(self):
        trace = Trace()
        trace.add_column("a", [0], [1])
        with pytest.raises(ValueError, match="already"):
            trace.add_column("a", [0], [2])


class _FakeProbe:
    def __init__(self, name, summary=None):
        self._name = name
        self._summary = summary or {}

    def columns(self):
        return {self._name: ([0, 1], [1, 2])}

    def summary(self):
        return dict(self._summary)


class TestRunRecord:
    def test_build_record_merges_probe_output(self):
        record = build_record(
            replica=2,
            rounds_executed=5,
            stopped_early=True,
            engine_summary={"final_discrepancy": 3},
            discrepancy_history=[9, 6, 3],
            probes=[_FakeProbe("phi", {"min_load": 0})],
        )
        assert record.replica == 2
        assert record.summary["final_discrepancy"] == 3
        assert record.summary["min_load"] == 0
        assert "phi" in record.trace
        assert record.trace.series("discrepancy") == (
            [0, 1, 2],
            [9, 6, 3],
        )

    def test_probe_columns_win_over_engine_history(self):
        record = build_record(
            replica=0,
            rounds_executed=1,
            stopped_early=False,
            discrepancy_history=[9, 6],
            probes=[_FakeProbe("discrepancy")],
        )
        # the probe's (possibly sparser) series is the one kept
        assert record.trace.series("discrepancy") == ([0, 1], [1, 2])

    def test_colliding_probe_columns_get_suffixes(self):
        record = build_record(
            replica=0,
            rounds_executed=1,
            stopped_early=False,
            probes=[_FakeProbe("red"), _FakeProbe("red")],
        )
        assert set(record.trace.names()) == {"red", "red#2"}

    def test_row_and_dict_round_trip(self):
        record = build_record(
            replica=1,
            rounds_executed=4,
            stopped_early=False,
            engine_summary={"final_discrepancy": 2},
            discrepancy_history=[4, 2],
        )
        row = record.row()
        assert row["replica"] == 1
        assert row["rounds"] == 4
        assert row["final_discrepancy"] == 2
        rebuilt = RunRecord.from_dict(record.to_dict())
        assert rebuilt.summary == record.summary
        assert rebuilt.trace.series("discrepancy") == (
            record.trace.series("discrepancy")
        )
