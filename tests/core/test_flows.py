"""Unit tests for flow accounting (the paper's F_t identities)."""

import numpy as np

from repro.algorithms import RotorRouter, SendFloor, SendRounded
from repro.core.engine import Simulator
from repro.core.flows import (
    FlowTracker,
    antisymmetric_net_flow,
    directed_edge_flows,
)
from repro.core.loads import point_mass

from tests.helpers import spread_loads


def run_with_tracker(graph, balancer, loads, rounds, record_rounds=False):
    tracker = FlowTracker(record_rounds=record_rounds)
    simulator = Simulator(graph, balancer, loads, monitors=(tracker,))
    result = simulator.run(rounds)
    return result, tracker


class TestCumulativeIdentities:
    def test_flow_identity_reconstructs_loads(self, expander24):
        """Identity (1): x1 + F_in - F_out equals the current vector."""
        loads = spread_loads(24, seed=2)
        result, tracker = run_with_tracker(
            expander24, RotorRouter(), loads, 40
        )
        reconstructed = tracker.conservation_identity_error(loads)
        np.testing.assert_array_equal(reconstructed, result.final_loads)

    def test_flow_identity_send_floor(self, torus9):
        loads = point_mass(9, 900)
        result, tracker = run_with_tracker(torus9, SendFloor(), loads, 25)
        np.testing.assert_array_equal(
            tracker.conservation_identity_error(loads),
            result.final_loads,
        )

    def test_out_flow_equals_port_sums(self, expander24):
        loads = spread_loads(24, seed=5)
        _, tracker = run_with_tracker(expander24, SendFloor(), loads, 10)
        np.testing.assert_array_equal(
            tracker.cumulative_out(), tracker.cumulative.sum(axis=1)
        )

    def test_total_in_equals_total_out(self, expander24):
        loads = spread_loads(24, seed=8)
        _, tracker = run_with_tracker(expander24, RotorRouter(), loads, 15)
        assert tracker.cumulative_in().sum() == tracker.cumulative_out().sum()


class TestSpread:
    def test_send_floor_spread_zero(self, expander24):
        """Observation 2.2: SEND(⌊x/d+⌋) is cumulatively 0-fair."""
        loads = spread_loads(24, seed=3)
        _, tracker = run_with_tracker(expander24, SendFloor(), loads, 30)
        assert tracker.original_spread().max() == 0

    def test_rotor_router_spread_at_most_one(self, expander24):
        """Observation 2.2: ROTOR-ROUTER is cumulatively 1-fair."""
        loads = spread_loads(24, seed=4)
        _, tracker = run_with_tracker(expander24, RotorRouter(), loads, 30)
        assert tracker.original_spread().max() <= 1

    def test_send_rounded_spread_zero(self, expander24):
        loads = spread_loads(24, seed=6)
        _, tracker = run_with_tracker(expander24, SendRounded(), loads, 30)
        assert tracker.original_spread().max() == 0


class TestRemainder:
    def test_rotor_router_zero_remainder(self, expander24):
        loads = spread_loads(24, seed=9)
        _, tracker = run_with_tracker(expander24, RotorRouter(), loads, 10)
        assert tracker.max_abs_remainder == 0

    def test_send_floor_zero_remainder_with_loops(self, expander24):
        loads = spread_loads(24, seed=10)
        _, tracker = run_with_tracker(expander24, SendFloor(), loads, 10)
        assert tracker.max_abs_remainder == 0


class TestHistory:
    def test_round_history_stacks(self, cycle12):
        loads = point_mass(12, 60)
        _, tracker = run_with_tracker(
            cycle12, SendFloor(), loads, 4, record_rounds=True
        )
        stacked = tracker.flow_per_round()
        assert stacked.shape == (4, 12, 4)
        np.testing.assert_array_equal(
            stacked.sum(axis=0), tracker.cumulative
        )

    def test_history_requires_flag(self, cycle12):
        import pytest

        _, tracker = run_with_tracker(
            cycle12, SendFloor(), point_mass(12, 12), 2
        )
        with pytest.raises(RuntimeError):
            tracker.flow_per_round()


class TestEdgeViews:
    def test_directed_flows_keys(self, cycle12):
        _, tracker = run_with_tracker(
            cycle12, SendFloor(), point_mass(12, 120), 5
        )
        flows = directed_edge_flows(tracker, cycle12)
        assert len(flows) == 12 * 2
        assert all(value >= 0 for value in flows.values())

    def test_net_flow_antisymmetric_keys(self, cycle12):
        _, tracker = run_with_tracker(
            cycle12, SendFloor(), point_mass(12, 120), 5
        )
        net = antisymmetric_net_flow(tracker, cycle12)
        assert len(net) == 12  # one entry per undirected edge
