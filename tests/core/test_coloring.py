"""Tests for the executable Lemma 3.5 token-coloring argument."""

import numpy as np
import pytest

from repro.algorithms import RotorRouter, RotorRouterStar, SendRounded
from repro.core.coloring import (
    TokenColoringLedger,
    black_send_capacity_respected,
)
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.graphs import families


@pytest.fixture(scope="module")
def graph():
    return families.random_regular(24, 4, seed=37)


class TestLedger:
    @pytest.mark.parametrize(
        "balancer_factory",
        [RotorRouter, RotorRouterStar, SendRounded],
        ids=["rotor_router", "rotor_router_star", "send_rounded"],
    )
    def test_red_tokens_never_created(self, graph, balancer_factory):
        average = 64
        c = average // graph.total_degree + 1
        ledger = TokenColoringLedger(c)
        simulator = Simulator(
            graph,
            balancer_factory(),
            point_mass(24, 24 * average),
            monitors=(ledger,),
        )
        simulator.run(120)
        assert ledger.consistent
        assert ledger.conservation_holds()

    def test_red_history_matches_phi(self, graph):
        from repro.core.potentials import phi

        c = 3
        ledger = TokenColoringLedger(c)
        simulator = Simulator(
            graph,
            RotorRouterStar(),
            point_mass(24, 24 * 16),
            monitors=(ledger,),
        )
        simulator.run(30)
        assert ledger.red_history[-1] == phi(
            simulator.loads, c, graph.total_degree
        )

    def test_recolorings_accumulate(self, graph):
        """A balancing run recolors all initial red tokens eventually."""
        c = 80 // graph.total_degree + 2
        ledger = TokenColoringLedger(c)
        simulator = Simulator(
            graph,
            RotorRouterStar(),
            point_mass(24, 24 * 16),
            monitors=(ledger,),
        )
        simulator.run(400)
        assert ledger.final_red == 0
        assert ledger.recolored_total == ledger.initial_red


class TestBlackCapacity:
    def test_round_fair_send_respects_capacity(self, graph):
        balancer = RotorRouter().bind(graph)
        loads = point_mass(24, 24 * 50)
        sends = balancer.sends(loads, 1)
        # Any threshold at or below the floor share works.
        c = int(loads.max()) // graph.total_degree
        assert black_send_capacity_respected(
            loads, sends, c, graph.total_degree
        )

    def test_violation_detected(self):
        loads = np.array([10])
        sends = np.array([[0, 5, 5]])  # port 0 starves below c
        assert not black_send_capacity_respected(loads, sends, 2, 3)

    def test_vacuous_when_no_overload(self):
        loads = np.array([5])
        sends = np.array([[0, 0, 5]])
        assert black_send_capacity_respected(loads, sends, 2, 3)
