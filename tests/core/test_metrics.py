"""Unit tests for load-vector metrics."""

import numpy as np
import pytest

from repro.core import metrics


class TestScalars:
    def test_discrepancy(self):
        assert metrics.discrepancy(np.array([3, 9, 5])) == 6

    def test_discrepancy_balanced(self):
        assert metrics.discrepancy(np.array([4, 4, 4])) == 0

    def test_balancedness(self):
        assert metrics.balancedness(np.array([0, 0, 6])) == pytest.approx(4)

    def test_underload_gap(self):
        assert metrics.underload_gap(np.array([0, 0, 6])) == pytest.approx(2)

    def test_deviation_norm_inf(self):
        assert metrics.deviation_norm(np.array([0, 0, 6])) == pytest.approx(4)

    def test_deviation_norm_one(self):
        assert metrics.deviation_norm(
            np.array([0, 0, 6]), p=1
        ) == pytest.approx(8)

    def test_deviation_norm_two(self):
        value = metrics.deviation_norm(np.array([0, 4]), p=2)
        assert value == pytest.approx(np.sqrt(8))

    def test_is_perfectly_balanced(self):
        assert metrics.is_perfectly_balanced(np.array([3, 4, 3]))
        assert not metrics.is_perfectly_balanced(np.array([2, 4, 3]))


class TestSummary:
    def test_of(self):
        summary = metrics.LoadSummary.of(np.array([1, 5, 3]))
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.discrepancy == 4
        assert summary.mean == pytest.approx(3.0)

    def test_as_dict(self):
        data = metrics.LoadSummary.of(np.array([2, 2])).as_dict()
        assert data["discrepancy"] == 0


class TestTrajectories:
    def test_time_to_discrepancy(self):
        history = [10, 8, 5, 3, 3]
        assert metrics.time_to_discrepancy(history, 5) == 2
        assert metrics.time_to_discrepancy(history, 10) == 0
        assert metrics.time_to_discrepancy(history, 1) is None

    def test_final_plateau(self):
        history = [9, 9, 2, 3, 2]
        assert metrics.final_plateau(history, window=3) == 3
        assert metrics.final_plateau(history, window=1) == 2

    def test_final_plateau_empty(self):
        with pytest.raises(ValueError):
            metrics.final_plateau([])


class TestFloatDiscrepancy:
    """Regression: real-valued loads must not be silently truncated.

    Continuous diffusion produces float load vectors, so discrepancy
    values (and histories built from them) are floats — `discrepancy`
    is type-preserving instead of casting through `int`.
    """

    def test_discrepancy_preserves_float(self):
        loads = np.array([1.25, 3.75, 2.0])
        value = metrics.discrepancy(loads)
        assert isinstance(value, float)
        assert value == pytest.approx(2.5)

    def test_discrepancy_keeps_int_for_integer_loads(self):
        value = metrics.discrepancy(np.array([1, 5, 3], dtype=np.int64))
        assert isinstance(value, int)
        assert value == 4

    def test_final_plateau_preserves_float(self):
        history = [2.5, 1.75, 1.25]
        value = metrics.final_plateau(history, window=2)
        assert isinstance(value, float)
        assert value == pytest.approx(1.75)

    def test_continuous_diffusion_history_is_float(self):
        from repro.algorithms.continuous import ContinuousDiffusion
        from repro.graphs import families

        graph = families.cycle(8)
        initial = np.zeros(8)
        initial[0] = 10.0
        result = ContinuousDiffusion(graph).run(initial, 5)
        assert all(
            isinstance(v, float) for v in result.discrepancy_history
        )
        # after a few rounds the true discrepancy is fractional; the
        # recorded value must match the exact max-min, not its floor
        final = result.discrepancy_history[-1]
        exact = float(result.final_loads.max() - result.final_loads.min())
        assert final == pytest.approx(exact)
        assert final != int(final)
