"""Unit tests for the capability-typed probe API."""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.coloring import TokenColoringLedger
from repro.core.engine import Simulator
from repro.core.fairness import CumulativeFairnessMonitor, FairnessMonitor
from repro.core.flows import FlowTracker
from repro.core.loads import point_mass
from repro.core.monitors import (
    DiscrepancyRecorder,
    LoadBoundsMonitor,
    Monitor,
    PeriodDetector,
    TrajectoryRecorder,
)
from repro.core.potentials import PotentialMonitor
from repro.core.probes import (
    PROBES,
    MonitorProbe,
    ProbeSpec,
    as_probe,
    dense_required,
    loads_only,
)
from repro.core.trace import SamplingSchedule


def _loads(n, tokens=None):
    return point_mass(n, tokens if tokens is not None else 10 * n)


class TestCapabilityDeclarations:
    def test_recorders_are_loads_only(self):
        for cls in (
            DiscrepancyRecorder,
            LoadBoundsMonitor,
            PeriodDetector,
        ):
            assert cls().needs == "loads"
        assert TrajectoryRecorder().needs == "loads"
        assert PotentialMonitor([1], s=1).needs == "loads"
        assert TokenColoringLedger(c=2).needs == "loads"

    def test_sends_consumers_accept_structured(self):
        for probe in (
            FlowTracker(),
            FairnessMonitor(s=1),
            CumulativeFairnessMonitor(),
        ):
            assert probe.needs == "sends"
            assert probe.accepts_structured

    def test_legacy_monitor_is_dense_requiring(self):
        monitor = Monitor()
        assert monitor.needs == "sends"
        assert not monitor.accepts_structured
        assert dense_required([monitor])
        assert not dense_required([LoadBoundsMonitor(), FlowTracker()])

    def test_loads_only_helper(self):
        assert loads_only([LoadBoundsMonitor(), PeriodDetector()])
        assert not loads_only([FlowTracker()])


class TestAsProbe:
    def test_probe_passes_through(self):
        probe = LoadBoundsMonitor()
        assert as_probe(probe) is probe

    def test_duck_typed_observer_wraps(self):
        class OldSchool:
            def __init__(self):
                self.calls = 0

            def start(self, graph, balancer, loads):
                pass

            def observe(self, t, loads_before, sends, loads_after):
                self.calls += 1

        wrapped = as_probe(OldSchool())
        assert isinstance(wrapped, MonitorProbe)
        assert wrapped.needs == "sends"

    def test_garbage_rejected(self):
        with pytest.raises(TypeError, match="probe"):
            as_probe(42)


class TestProbeSpec:
    def test_registry_has_builtin_probes(self):
        for name in (
            "discrepancy",
            "load_bounds",
            "trajectory",
            "period",
            "potentials",
            "fairness",
            "cumulative_fairness",
            "flows",
            "token_coloring",
        ):
            assert name in PROBES

    def test_build_with_params(self):
        probe = ProbeSpec("potentials", {"c_values": [2], "s": 1}).build()
        assert isinstance(probe, PotentialMonitor)
        assert probe.c_values == [2]

    def test_round_trip(self):
        spec = ProbeSpec("token_coloring", {"c": 3})
        assert ProbeSpec.from_dict(spec.to_dict()) == spec

    def test_parse_plain_and_json(self):
        assert ProbeSpec.parse("load_bounds") == ProbeSpec("load_bounds")
        parsed = ProbeSpec.parse('potentials:{"c_values": [1], "s": 2}')
        assert parsed == ProbeSpec(
            "potentials", {"c_values": [1], "s": 2}
        )

    def test_parse_rejects_non_object_params(self):
        with pytest.raises(ValueError, match="JSON object"):
            ProbeSpec.parse("load_bounds:[1]")

    def test_schedule_params_round_trip_from_json(self):
        spec = ProbeSpec(
            "discrepancy", {"schedule": {"kind": "geometric"}}
        )
        probe = spec.build()
        assert probe.schedule == SamplingSchedule.geometric()


class TestEngineSelection:
    def test_loads_probes_keep_structured_auto(self, cycle12):
        simulator = Simulator(
            cycle12,
            make("send_floor"),
            _loads(12),
            probes=(LoadBoundsMonitor(), DiscrepancyRecorder()),
        )
        assert simulator.engine == "structured"

    def test_structured_accepting_sends_probes_keep_structured(
        self, cycle12
    ):
        simulator = Simulator(
            cycle12,
            make("send_floor"),
            _loads(12),
            probes=(FlowTracker(), CumulativeFairnessMonitor()),
        )
        assert simulator.engine == "structured"

    def test_dense_requiring_probe_forces_dense(self, cycle12):
        simulator = Simulator(
            cycle12,
            make("send_floor"),
            _loads(12),
            probes=(Monitor(),),
        )
        assert simulator.engine == "dense"

    def test_explicit_structured_with_loads_probes_allowed(self, cycle12):
        simulator = Simulator(
            cycle12,
            make("send_floor"),
            _loads(12),
            probes=(LoadBoundsMonitor(),),
            engine="structured",
        )
        assert simulator.engine == "structured"

    def test_explicit_structured_with_dense_probe_rejected(self, cycle12):
        with pytest.raises(ValueError, match="dense sends"):
            Simulator(
                cycle12,
                make("send_floor"),
                _loads(12),
                probes=(Monitor(),),
                engine="structured",
            )

    def test_legacy_monitors_param_still_pins_dense(self, cycle12):
        simulator = Simulator(
            cycle12,
            make("send_floor"),
            _loads(12),
            monitors=(LoadBoundsMonitor(),),
        )
        assert simulator.engine == "dense"


class TestProbeObservation:
    def test_loads_probe_output_matches_dense_run(self, expander24):
        loads = _loads(24, 240)

        def run(engine):
            probe = DiscrepancyRecorder()
            bounds = LoadBoundsMonitor()
            Simulator(
                expander24,
                make("send_floor"),
                loads,
                probes=(probe, bounds),
                engine=engine,
            ).run(25)
            return probe.history, bounds.min_ever, bounds.max_ever

        # structured and dense runs must feed probes identical data
        assert run("structured") == run("dense")

    def test_flow_tracker_structured_matches_dense(self, expander24):
        loads = _loads(24, 480)

        def run(engine):
            tracker = FlowTracker()
            Simulator(
                expander24,
                make("rotor_router"),
                loads,
                probes=(tracker,),
                engine=engine,
            ).run(30)
            return tracker

        structured = run("structured")
        dense = run("dense")
        np.testing.assert_array_equal(
            structured.cumulative, dense.cumulative
        )
        assert (
            structured.max_abs_remainder == dense.max_abs_remainder
        )
        np.testing.assert_array_equal(
            structured.last_remainder, dense.last_remainder
        )

    def test_flow_tracker_record_rounds_on_structured(self, cycle12):
        tracker = FlowTracker(record_rounds=True)
        simulator = Simulator(
            cycle12,
            make("send_floor"),
            _loads(12),
            probes=(tracker,),
            engine="structured",
        )
        simulator.run(4)
        assert tracker.flow_per_round().shape == (4, 12, 4)

    def test_fairness_monitors_structured_match_dense(self, expander24):
        loads = _loads(24, 480)

        def run(engine):
            fairness = FairnessMonitor(s=1)
            cumulative = CumulativeFairnessMonitor()
            Simulator(
                expander24,
                make("rotor_router"),
                loads,
                probes=(fairness, cumulative),
                engine=engine,
            ).run(30)
            return (
                fairness.total_floor_violations,
                fairness.total_ceil_violations,
                fairness.total_self_preference_deficit,
                cumulative.observed_delta,
            )

        assert run("structured") == run("dense")

    def test_sparse_discrepancy_schedule_keeps_final(self, expander24):
        probe = DiscrepancyRecorder(
            schedule=SamplingSchedule.geometric(2.0)
        )
        simulator = Simulator(
            expander24,
            make("send_floor"),
            _loads(24, 240),
            probes=(probe,),
        )
        simulator.run(23)
        rounds, values = probe.columns()["discrepancy"]
        assert rounds == [0, 1, 2, 4, 8, 16, 23]  # final retained
        full = simulator.discrepancy_history
        assert values == [full[t] for t in rounds]

    def test_record_collects_probe_summaries(self, expander24):
        result = Simulator(
            expander24,
            make("send_floor"),
            _loads(24, 240),
            probes=(LoadBoundsMonitor(), PeriodDetector()),
        ).run(10)
        record = result.record
        assert record is not None
        assert record.summary["min_load"] == 0
        assert record.summary["max_load"] == 240
        assert "period" in record.summary
        assert record.trace.series("discrepancy")[1] == (
            result.discrepancy_history
        )
