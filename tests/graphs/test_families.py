"""Unit tests for every graph family generator."""

import numpy as np
import pytest

from repro.graphs import families
from repro.graphs.errors import GraphConstructionError


class TestCycle:
    def test_structure(self):
        graph = families.cycle(7)
        assert graph.num_nodes == 7
        assert graph.degree == 2
        assert graph.neighbors(0) == (1, 6)

    def test_default_self_loops(self):
        assert families.cycle(5).num_self_loops == 2

    def test_custom_self_loops(self):
        assert families.cycle(5, num_self_loops=0).num_self_loops == 0

    def test_rejects_small(self):
        with pytest.raises(GraphConstructionError):
            families.cycle(2)


class TestComplete:
    def test_structure(self):
        graph = families.complete(5)
        assert graph.degree == 4
        assert graph.num_edges() == 10

    def test_rejects_small(self):
        with pytest.raises(GraphConstructionError):
            families.complete(1)


class TestCirculant:
    def test_offsets(self):
        graph = families.circulant(10, [1, 2])
        assert graph.degree == 4
        assert set(graph.neighbors(0)) == {1, 2, 8, 9}

    def test_antipodal_offset(self):
        # The antipodal offset contributes a single edge per node.
        graph = families.circulant(8, [1, 4])
        assert graph.degree == 3

    def test_rejects_bad_offsets(self):
        with pytest.raises(GraphConstructionError):
            families.circulant(10, [6])
        with pytest.raises(GraphConstructionError):
            families.circulant(10, [])

    def test_clique_structure(self):
        graph = families.circulant_clique(20, 8)
        members = set(range(4))
        for u in members:
            assert members - {u} <= set(graph.neighbors(u))

    def test_clique_odd_degree(self):
        graph = families.circulant_clique(20, 5)
        assert graph.degree == 5

    def test_clique_odd_degree_needs_even_n(self):
        with pytest.raises(GraphConstructionError):
            families.circulant_clique(21, 5)

    def test_clique_requires_enough_nodes(self):
        with pytest.raises(GraphConstructionError):
            families.circulant_clique(8, 8)


class TestHypercube:
    def test_structure(self):
        graph = families.hypercube(4)
        assert graph.num_nodes == 16
        assert graph.degree == 4

    def test_neighbors_differ_in_one_bit(self):
        graph = families.hypercube(3)
        for u in range(8):
            for v in graph.neighbors(u):
                assert bin(u ^ v).count("1") == 1

    def test_rejects_zero_dim(self):
        with pytest.raises(GraphConstructionError):
            families.hypercube(0)


class TestTorus:
    def test_2d(self):
        graph = families.torus(4, 2)
        assert graph.num_nodes == 16
        assert graph.degree == 4

    def test_3d(self):
        graph = families.torus(3, 3)
        assert graph.num_nodes == 27
        assert graph.degree == 6

    def test_1d_is_cycle(self):
        torus = families.torus(7, 1)
        cycle = families.cycle(7)
        assert torus.edge_list() == cycle.edge_list()

    def test_diameter(self):
        assert families.torus(4, 2).diameter() == 4

    def test_rejects_small_side(self):
        with pytest.raises(GraphConstructionError):
            families.torus(2, 2)


class TestRandomRegular:
    def test_structure(self):
        graph = families.random_regular(20, 3, seed=5)
        assert graph.num_nodes == 20
        assert graph.degree == 3
        assert graph.is_connected()

    def test_deterministic_given_seed(self):
        a = families.random_regular(16, 4, seed=9)
        b = families.random_regular(16, 4, seed=9)
        assert a.edge_list() == b.edge_list()

    def test_rejects_odd_product(self):
        with pytest.raises(GraphConstructionError):
            families.random_regular(9, 3, seed=1)

    def test_rejects_degree_ge_n(self):
        with pytest.raises(GraphConstructionError):
            families.random_regular(4, 4, seed=1)


class TestPetersen:
    def test_structure(self):
        graph = families.petersen()
        assert graph.num_nodes == 10
        assert graph.degree == 3
        assert graph.odd_girth() == 5
        assert graph.diameter() == 2


class TestRingOfCliques:
    def test_regularity(self):
        graph = families.ring_of_cliques(4, 3)
        assert graph.num_nodes == 12
        assert graph.degree == 4  # (clique_size - 1) + 2 matching edges

    def test_diameter_grows_with_blocks(self):
        small = families.ring_of_cliques(4, 3)
        large = families.ring_of_cliques(8, 3)
        assert large.diameter() > small.diameter()

    def test_degree_independent_of_blocks(self):
        a = families.ring_of_cliques(4, 4)
        b = families.ring_of_cliques(10, 4)
        assert a.degree == b.degree == 5

    def test_clique_blocks_are_complete(self):
        graph = families.ring_of_cliques(3, 4)
        for node in range(4):
            block = set(range(4)) - {node}
            assert block <= set(graph.neighbors(node))

    def test_rejects_bad_parameters(self):
        with pytest.raises(GraphConstructionError):
            families.ring_of_cliques(2, 3)
        with pytest.raises(GraphConstructionError):
            families.ring_of_cliques(4, 1)

    def test_steady_state_lower_bound_scales(self):
        """Theorem 4.1 instance: discrepancy tracks d*(diam-1) here."""
        from repro.lower_bounds import build_steady_state_instance

        for blocks in (4, 8):
            graph = families.ring_of_cliques(blocks, 3, num_self_loops=0)
            instance = build_steady_state_instance(graph)
            assert (
                instance.actual_discrepancy
                >= instance.predicted_discrepancy
            )


class TestCompleteBipartite:
    def test_structure(self):
        graph = families.complete_bipartite_regular(4)
        assert graph.num_nodes == 8
        assert graph.degree == 4
        assert graph.is_bipartite()

    def test_rejects_side_one(self):
        with pytest.raises(GraphConstructionError):
            families.complete_bipartite_regular(1)


class TestBuildByName:
    def test_build(self):
        graph = families.build("cycle", n=6)
        assert graph.num_nodes == 6

    def test_unknown_family(self):
        with pytest.raises(GraphConstructionError, match="unknown"):
            families.build("moebius")


class TestLargeScaleConstruction:
    """Vectorized generators: big graphs build in one numpy pass.

    Sizes are chosen to be instant when construction is vectorized and
    painfully slow if a per-node Python loop sneaks back in.
    """

    def test_large_cycle(self):
        n = 200_000
        graph = families.cycle(n)
        assert graph.num_nodes == n
        assert graph.degree == 2
        np.testing.assert_array_equal(
            graph.adjacency[12345], [12344, 12346]
        )

    def test_large_torus(self):
        side = 300  # 90k nodes
        graph = families.torus(side, 2)
        assert graph.num_nodes == side * side
        assert graph.degree == 4
        # Interior node: neighbors are +-1 on each axis.
        u = 5 * side + 7
        np.testing.assert_array_equal(
            np.sort(graph.adjacency[u]),
            np.sort([u - 1, u + 1, u - side, u + side]),
        )
        # Wrap-around on both axes at the origin.
        assert set(map(int, graph.adjacency[0])) == {
            1,
            side - 1,
            side,
            side * (side - 1),
        }

    def test_large_circulant(self):
        n = 100_000
        graph = families.circulant(n, [1, 3, 7])
        assert graph.degree == 6
        assert set(map(int, graph.adjacency[0])) == {
            1, 3, 7, n - 1, n - 3, n - 7,
        }

    def test_large_complete(self):
        graph = families.complete(400)
        assert graph.degree == 399
        assert 400 not in set(map(int, graph.adjacency[17]))
        assert 17 not in set(map(int, graph.adjacency[17]))

    def test_distances_on_large_torus(self):
        side = 120
        graph = families.torus(side, 2)
        dist = graph.distances_from(0)
        # Torus BFS distance from the origin is the wrapped L1 norm.
        coords = np.arange(side * side)
        row, col = coords // side, coords % side
        expected = np.minimum(row, side - row) + np.minimum(
            col, side - col
        )
        np.testing.assert_array_equal(dist, expected)
