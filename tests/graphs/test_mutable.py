"""Unit tests for the in-place mutable balancing graph.

Differential parity lives in ``tests/differential/test_churn_parity.py``;
this file pins the structural semantics: the deterministic port-layout
discipline (append add, swap-remove drop), incremental reverse-port
repair, the dirty-node accounting balancers refresh from, and every
guarded error path.
"""

import numpy as np
import pytest

from repro.graphs import MutableBalancingGraph, families
from repro.graphs.datacenter import fat_tree
from repro.graphs.errors import GraphValidationError


def _cycle_mutable(n=6):
    return MutableBalancingGraph.from_graph(families.cycle(n))


def test_from_graph_copies_and_synthesizes_true_degrees():
    base = families.cycle(5)
    graph = MutableBalancingGraph.from_graph(base)
    np.testing.assert_array_equal(graph.adjacency, base.adjacency)
    assert graph.true_degrees.tolist() == [2] * 5
    graph.drop_edge(0, 1)
    # Mutation must never leak back into the source graph.
    assert base.adjacency[0, 0] != 0 or base.adjacency[0, 1] != 0
    np.testing.assert_array_equal(
        base.adjacency, families.cycle(5).adjacency
    )


def test_add_edge_lands_in_first_padding_slot():
    graph = _cycle_mutable()
    graph.drop_edge(0, 1)
    graph.drop_edge(2, 3)
    assert graph.true_degrees[0] == 1
    assert graph.true_degrees[3] == 1
    graph.add_edge(0, 3)
    # Port 1 was vacated by each drop; the add reuses it on both ends.
    assert graph.adjacency[0, 1] == 3
    assert graph.adjacency[3, 1] == 0
    assert graph.reverse_port[0, 1] == 1
    assert graph.reverse_port[3, 1] == 1
    graph.check_consistency()


def test_drop_edge_swap_removes_and_repairs_far_endpoint():
    graph = _cycle_mutable()
    # Node 0's ports are [1, 5]; dropping port-0 neighbor 1 must move
    # neighbor 5 into port 0 and repair 5's reverse pointer.
    graph.drop_edge(0, 1)
    assert graph.neighbors(0) == (5,)
    assert graph.adjacency[0, 0] == 5
    far_port = int(graph.reverse_port[0, 0])
    assert graph.adjacency[5, far_port] == 0
    assert graph.reverse_port[5, far_port] == 0
    # The vacated slot is padding again: self-pointing, self-reverse.
    assert graph.adjacency[0, 1] == 0
    assert graph.reverse_port[0, 1] == 1
    graph.check_consistency()


def test_dirty_set_includes_swap_repaired_endpoints():
    graph = _cycle_mutable()
    graph.consume_dirty()
    graph.drop_edge(0, 1)
    # 0 and 1 changed directly; 5 (moved into 0's hole) and 2 (moved
    # into 1's hole) each got a reverse-port repair.
    assert graph.consume_dirty().tolist() == [0, 1, 2, 5]
    assert graph.consume_dirty().size == 0


def test_deactivate_node_severs_everything_and_activate_rewires():
    graph = _cycle_mutable()
    severed = graph.deactivate_node(2)
    assert severed == (1, 3)
    assert not graph.active[2]
    assert graph.true_degrees[2] == 0
    graph.check_consistency()
    graph.activate_node(2, severed)
    assert graph.active[2]
    assert graph.neighbors(2) == (1, 3)
    graph.check_consistency()


def test_left_node_keeps_balancing_against_itself():
    graph = _cycle_mutable()
    graph.deactivate_node(4)
    # Every port of the left node is padding: self-pointing targets.
    for port in range(graph.total_degree):
        assert graph.port_target(4, port) == 4


def test_structural_error_paths():
    graph = _cycle_mutable()
    with pytest.raises(GraphValidationError):
        graph.add_edge(0, 0)  # self-edge
    with pytest.raises(GraphValidationError):
        graph.add_edge(0, 1)  # already present
    with pytest.raises(GraphValidationError):
        graph.drop_edge(0, 3)  # absent
    with pytest.raises(GraphValidationError):
        graph.add_edge(2, 5)  # capacity exhausted (d_max == 2)
    graph.deactivate_node(1)
    with pytest.raises(GraphValidationError):
        graph.deactivate_node(1)  # already inactive
    with pytest.raises(GraphValidationError):
        graph.add_edge(0, 1)  # endpoint inactive
    graph.activate_node(1)
    with pytest.raises(GraphValidationError):
        graph.activate_node(1)  # already active


def test_from_neighbor_lists_preserves_list_order():
    # Unsorted blocks are intentional: swap-remove produces them and
    # rotor-router port order depends on them being kept verbatim.
    graph = MutableBalancingGraph.from_neighbor_lists(
        [[2, 1], [0, 2], [1, 0]], d_max=3, num_self_loops=1
    )
    assert graph.neighbors(0) == (2, 1)
    assert graph.degree == 3
    assert graph.total_degree == 4
    graph.check_consistency()


def test_from_neighbor_lists_rejects_overfull_rows():
    with pytest.raises(GraphValidationError):
        MutableBalancingGraph.from_neighbor_lists(
            [[1, 2, 3], [0], [0], [0]], d_max=2, num_self_loops=0
        )


def test_check_consistency_catches_corruption():
    graph = _cycle_mutable()
    graph.reverse_port[0, 0] = 1  # no longer inverts adjacency
    with pytest.raises(GraphValidationError):
        graph.check_consistency()


def test_irregular_graph_roundtrip_under_churn():
    graph = MutableBalancingGraph.from_graph(fat_tree(4))
    u = 0
    v = int(graph.adjacency[u, 0])
    graph.drop_edge(u, v)
    graph.add_edge(u, v)
    graph.check_consistency()
    # Rebuilding from the mutated lists reproduces the arrays exactly.
    lists = [
        list(graph.neighbors(node)) for node in range(graph.num_nodes)
    ]
    rebuilt = MutableBalancingGraph.from_neighbor_lists(
        lists, graph.degree, graph.num_self_loops
    )
    np.testing.assert_array_equal(rebuilt.adjacency, graph.adjacency)
    np.testing.assert_array_equal(
        rebuilt.reverse_port, graph.reverse_port
    )


def test_transition_matrix_tracks_mutations():
    graph = _cycle_mutable(4)
    before = graph.transition_matrix()
    assert np.allclose(before.sum(axis=1), 1.0)
    graph.drop_edge(0, 1)
    after = graph.transition_matrix()
    assert np.allclose(after.sum(axis=1), 1.0)
    d_plus = graph.total_degree
    assert after[0, 1] == 0.0
    assert after[0, 0] == before[0, 0] + 1.0 / d_plus
