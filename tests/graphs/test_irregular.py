"""Tests for the non-regular extension (padding reduction)."""

import numpy as np
import pytest

from repro.algorithms import (
    RotorRouter,
    RotorRouterStar,
    SendFloor,
    SendRounded,
    make,
)
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.graphs.errors import GraphValidationError
from repro.graphs.irregular import (
    from_irregular_edges,
    from_networkx_irregular,
)
from repro.graphs.spectral import eigenvalue_gap

from tests.helpers import run_monitored


def lollipop():
    """Triangle with a two-edge tail: degrees 1..3."""
    return from_irregular_edges(
        5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]
    )


class TestConstruction:
    def test_padding_shape(self):
        graph = lollipop()
        assert graph.num_nodes == 5
        assert graph.degree == 3  # d_max
        assert graph.num_self_loops == 3  # defaults to d_max
        assert graph.total_degree == 6

    def test_true_degrees(self):
        graph = lollipop()
        assert list(graph.true_degrees) == [2, 2, 3, 2, 1]

    def test_padding_counts(self):
        graph = lollipop()
        assert graph.padding_count(2) == 0
        assert graph.padding_count(4) == 2

    def test_neighbors_exclude_padding(self):
        graph = lollipop()
        assert graph.neighbors(4) == (3,)
        assert graph.port_target(4, 1) == 4  # padded port
        assert graph.port_target(4, 5) == 4  # lazy self-loop

    def test_rejects_isolated_node(self):
        with pytest.raises(GraphValidationError, match="no edges"):
            from_irregular_edges(3, [(0, 1)])

    def test_rejects_disconnected(self):
        with pytest.raises(GraphValidationError, match="disconnected"):
            from_irregular_edges(4, [(0, 1), (2, 3)])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(GraphValidationError, match="duplicate"):
            from_irregular_edges(3, [(0, 1), (1, 0), (1, 2)])

    def test_rejects_explicit_self_loop(self):
        with pytest.raises(GraphValidationError):
            from_irregular_edges(2, [(0, 0), (0, 1)])

    def test_from_networkx(self):
        import networkx as nx

        graph = from_networkx_irregular(nx.wheel_graph(7))
        assert graph.num_nodes == 7
        assert graph.degree == 6  # hub degree
        assert graph.is_connected()

    def test_reverse_port_padding_is_identity(self):
        graph = lollipop()
        for u in range(5):
            deg = int(graph.true_degrees[u])
            for p in range(deg, graph.degree):
                assert graph.reverse_port[u, p] == p


class TestMarkovChain:
    def test_doubly_stochastic(self):
        matrix = lollipop().transition_matrix()
        np.testing.assert_allclose(matrix.sum(axis=0), 1.0, atol=1e-12)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)

    def test_symmetric(self):
        matrix = lollipop().transition_matrix()
        np.testing.assert_allclose(matrix, matrix.T)

    def test_spectral_gap_positive(self):
        assert eigenvalue_gap(lollipop()) > 0

    def test_continuous_process_balances_to_uniform(self):
        from repro.algorithms.continuous import ContinuousDiffusion

        graph = lollipop()
        process = ContinuousDiffusion(graph)
        result = process.run(np.array([50.0, 0, 0, 0, 0]), rounds=400)
        np.testing.assert_allclose(result.final_loads, 10.0, atol=1e-3)


class TestEngineOnIrregular:
    @pytest.mark.parametrize(
        "balancer_factory",
        [SendFloor, SendRounded, RotorRouter, RotorRouterStar],
        ids=["send_floor", "send_rounded", "rotor", "rotor_star"],
    )
    def test_conservation_and_balance(self, balancer_factory):
        graph = lollipop()
        simulator = Simulator(
            graph, balancer_factory(), point_mass(5, 600)
        )
        result = simulator.run(400)
        assert result.final_loads.sum() == 600
        assert result.final_discrepancy <= 2 * graph.total_degree

    def test_every_registered_algorithm_runs(self):
        import networkx as nx

        graph = from_networkx_irregular(
            nx.barbell_graph(5, 2)
        )
        from repro.algorithms.registry import all_names

        for name in all_names():
            simulator = Simulator(
                graph,
                make(name, seed=2),
                point_mass(graph.num_nodes, graph.num_nodes * 24),
            )
            result = simulator.run(150)
            assert result.final_loads.sum() == graph.num_nodes * 24

    def test_rotor_router_still_cumulatively_1_fair(self):
        graph = lollipop()
        _, verdict, _, _ = run_monitored(
            graph, RotorRouter(), point_mass(5, 300), rounds=60
        )
        assert verdict.round_fair
        assert verdict.observed_delta <= 1

    def test_send_floor_still_cumulatively_0_fair(self):
        graph = lollipop()
        _, verdict, _, _ = run_monitored(
            graph, SendFloor(), point_mass(5, 300), rounds=60
        )
        assert verdict.is_cumulatively_fair(0)

    def test_star_graph_extreme_irregularity(self):
        """Hub degree n-1, leaves degree 1 — worst-case padding."""
        edges = [(0, leaf) for leaf in range(1, 9)]
        graph = from_irregular_edges(9, edges)
        simulator = Simulator(graph, RotorRouter(), point_mass(9, 900))
        result = simulator.run(600)
        assert result.final_loads.sum() == 900
        assert result.final_discrepancy <= 2 * graph.total_degree
