"""Topology invariants for the datacenter fabrics.

Property tests over a parameter grid: tier counts, per-tier true
degrees, connectivity, reverse-port symmetry, equivalence of the
vectorized edge-array construction with the reference loop builder,
and spectral sanity (second eigenvalue strictly below 1) through both
the dense and the sparse eigensolver paths.
"""

import numpy as np
import pytest

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.graphs import build
from repro.graphs.datacenter import fat_tree, leaf_spine
from repro.graphs.errors import (
    GraphConstructionError,
    GraphValidationError,
)
from repro.graphs.irregular import (
    from_edge_arrays,
    from_irregular_edges,
)
from repro.graphs.spectral import second_eigenvalue

FAT_TREE_KS = (2, 4, 6)
LEAF_SPINE_GRID = (
    (2, 2, 2),
    (4, 2, 3),
    (6, 3, 4),
    (3, 5, 1),
    (2, 2, 0),
)


def _real_edges(graph):
    """Undirected real edge set {(u, v), u < v} of a padded graph."""
    edges = set()
    for u in range(graph.num_nodes):
        for v in graph.neighbors(u):
            edges.add((min(u, v), max(u, v)))
    return edges


class TestFatTree:
    @pytest.mark.parametrize("k", FAT_TREE_KS)
    def test_tier_counts(self, k):
        graph = fat_tree(k)
        half = k // 2
        assert graph.tier_counts() == {
            "host": half * half * k,
            "edge": half * k,
            "agg": half * k,
            "core": half * half,
        }
        assert graph.num_nodes == sum(graph.tier_counts().values())

    @pytest.mark.parametrize("k", FAT_TREE_KS)
    def test_tier_degrees(self, k):
        graph = fat_tree(k)
        hosts = graph.node_tiers == 0
        assert (graph.true_degrees[hosts] == 1).all()
        assert (graph.true_degrees[~hosts] == k).all()
        assert graph.degree == k  # d_max

    @pytest.mark.parametrize("k", FAT_TREE_KS)
    def test_connected_with_small_diameter(self, k):
        graph = fat_tree(k)
        dist = graph.distances_from(0)
        assert (dist >= 0).all()
        # host -> edge -> agg -> core -> agg -> edge -> host
        assert dist.max() <= 6

    @pytest.mark.parametrize("k", FAT_TREE_KS)
    def test_reverse_port_symmetry(self, k):
        graph = fat_tree(k)
        adjacency = graph.adjacency
        reverse = graph.reverse_port
        for u in range(graph.num_nodes):
            for p in range(int(graph.true_degrees[u])):
                v = adjacency[u, p]
                assert adjacency[v, reverse[u, p]] == u
            for p in range(
                int(graph.true_degrees[u]), graph.degree
            ):
                assert adjacency[u, p] == u
                assert reverse[u, p] == p

    def test_rejects_odd_or_tiny_k(self):
        with pytest.raises(GraphConstructionError, match="even"):
            fat_tree(3)
        with pytest.raises(GraphConstructionError, match="even"):
            fat_tree(0)

    def test_registered_family(self):
        graph = build("fat_tree", k=4)
        assert graph.name == "fat_tree(k=4)"
        assert build("fat_tree", k=4, num_self_loops=0).num_self_loops == 0


class TestLeafSpine:
    @pytest.mark.parametrize(
        "leaves,spines,hosts_per_leaf", LEAF_SPINE_GRID
    )
    def test_tier_counts_and_degrees(
        self, leaves, spines, hosts_per_leaf
    ):
        graph = leaf_spine(leaves, spines, hosts_per_leaf)
        assert graph.tier_counts() == {
            "host": leaves * hosts_per_leaf,
            "leaf": leaves,
            "spine": spines,
        }
        tiers = graph.node_tiers
        degrees = graph.true_degrees
        assert (degrees[tiers == 0] == 1).all()
        assert (degrees[tiers == 1] == hosts_per_leaf + spines).all()
        assert (degrees[tiers == 2] == leaves).all()

    @pytest.mark.parametrize(
        "leaves,spines,hosts_per_leaf", LEAF_SPINE_GRID
    )
    def test_connected_and_symmetric(
        self, leaves, spines, hosts_per_leaf
    ):
        graph = leaf_spine(leaves, spines, hosts_per_leaf)
        assert graph.is_connected()
        adjacency, reverse = graph.adjacency, graph.reverse_port
        for u in range(graph.num_nodes):
            for p in range(int(graph.true_degrees[u])):
                assert adjacency[adjacency[u, p], reverse[u, p]] == u

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(GraphConstructionError, match="leaves"):
            leaf_spine(0, 2, 2)
        with pytest.raises(GraphConstructionError, match="leaves"):
            leaf_spine(2, 0, 2)
        with pytest.raises(
            GraphConstructionError, match="hosts_per_leaf"
        ):
            leaf_spine(2, 2, -1)

    def test_registered_family(self):
        graph = build(
            "leaf_spine", leaves=3, spines=2, hosts_per_leaf=2
        )
        assert graph.tier_counts()["host"] == 6


class TestEdgeArrayConstruction:
    """from_edge_arrays == from_irregular_edges on the same edges."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: fat_tree(4),
            lambda: leaf_spine(4, 2, 3),
        ],
        ids=["fat_tree", "leaf_spine"],
    )
    def test_matches_reference_builder(self, factory):
        fabric = factory()
        edges = sorted(_real_edges(fabric))
        reference = from_irregular_edges(fabric.num_nodes, edges)
        np.testing.assert_array_equal(
            fabric.adjacency, reference.adjacency
        )
        np.testing.assert_array_equal(
            fabric.reverse_port, reference.reverse_port
        )
        np.testing.assert_array_equal(
            fabric.true_degrees, reference.true_degrees
        )

    def test_rejects_duplicates_self_loops_and_disconnection(self):
        with pytest.raises(GraphValidationError, match="duplicate"):
            from_edge_arrays(3, [0, 1, 1], [1, 2, 2])
        with pytest.raises(GraphValidationError, match="self-loops"):
            from_edge_arrays(2, [0, 1], [0, 1])
        with pytest.raises(GraphValidationError, match="no edges"):
            from_edge_arrays(3, [0], [1])
        with pytest.raises(
            GraphValidationError, match="disconnected"
        ):
            from_edge_arrays(4, [0, 2], [1, 3])
        with pytest.raises(GraphValidationError, match="endpoints"):
            from_edge_arrays(3, [0], [3])


class TestTierMetadata:
    def test_tiers_require_names(self):
        with pytest.raises(GraphValidationError, match="together"):
            from_edge_arrays(2, [0], [1], node_tiers=[0, 0])

    def test_tier_length_must_match(self):
        with pytest.raises(GraphValidationError, match="length"):
            from_edge_arrays(
                2, [0], [1], node_tiers=[0], tier_names=("a",)
            )

    def test_tier_ids_must_index_names(self):
        with pytest.raises(GraphValidationError, match="index"):
            from_edge_arrays(
                2, [0], [1], node_tiers=[0, 5], tier_names=("a",)
            )

    def test_untier_graph_has_no_metadata(self):
        graph = from_edge_arrays(2, [0], [1])
        assert graph.node_tiers is None
        assert graph.tier_names is None
        assert graph.tier_counts() == {}
        assert "tiers" not in graph.describe()


class TestSpectral:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: fat_tree(4),
            lambda: leaf_spine(6, 3, 4),
        ],
        ids=["fat_tree", "leaf_spine"],
    )
    def test_second_eigenvalue_below_one(self, factory):
        graph = factory()
        lam2 = second_eigenvalue(graph)
        assert 0 < lam2 < 1

    def test_sparse_matrix_matches_dense(self):
        graph = fat_tree(4)
        np.testing.assert_allclose(
            graph.transition_matrix_sparse().toarray(),
            graph.transition_matrix(),
        )
        row_sums = np.asarray(
            graph.transition_matrix_sparse().sum(axis=1)
        ).ravel()
        np.testing.assert_allclose(row_sums, 1.0)

    @pytest.mark.slow
    def test_large_fabric_uses_sparse_path(self):
        # 4176 nodes > the dense eigh limit, so second_eigenvalue
        # must route through transition_matrix_sparse + eigsh.
        graph = fat_tree(24)
        assert graph.num_nodes > 3000
        lam2 = second_eigenvalue(graph)
        assert 0 < lam2 < 1


class TestEngineCompatibility:
    """Both engines run the fabrics and agree (structured support)."""

    @pytest.mark.parametrize(
        "algorithm", ["send_floor", "send_rounded", "rotor_router"]
    )
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: fat_tree(4),
            lambda: leaf_spine(4, 2, 3),
        ],
        ids=["fat_tree", "leaf_spine"],
    )
    def test_dense_equals_structured(self, algorithm, factory):
        graph = factory()
        rng = np.random.default_rng(7)
        loads = rng.integers(0, 60, graph.num_nodes).astype(np.int64)
        dense = Simulator(
            graph, make(algorithm), loads, engine="dense"
        ).run(40)
        structured = Simulator(
            graph, make(algorithm), loads, engine="structured"
        ).run(40)
        np.testing.assert_array_equal(
            dense.final_loads, structured.final_loads
        )
        assert (
            dense.discrepancy_history
            == structured.discrepancy_history
        )
