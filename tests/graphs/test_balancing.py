"""Unit tests for the BalancingGraph structure."""

import numpy as np
import pytest

from repro.graphs.balancing import BalancingGraph
from repro.graphs.errors import GraphValidationError
from repro.graphs import families


def triangle(num_self_loops=2):
    adjacency = np.array([[1, 2], [0, 2], [0, 1]], dtype=np.int64)
    return BalancingGraph(adjacency, num_self_loops)


class TestBasicStructure:
    def test_degrees(self):
        graph = triangle(3)
        assert graph.num_nodes == 3
        assert graph.degree == 2
        assert graph.num_self_loops == 3
        assert graph.total_degree == 5

    def test_rejects_negative_self_loops(self):
        with pytest.raises(GraphValidationError):
            triangle(-1)

    def test_neighbors_in_port_order(self):
        graph = triangle()
        assert graph.neighbors(0) == (1, 2)
        assert graph.neighbors(2) == (0, 1)

    def test_port_target_original(self):
        graph = triangle()
        assert graph.port_target(0, 0) == 1
        assert graph.port_target(0, 1) == 2

    def test_port_target_self_loop(self):
        graph = triangle(2)
        assert graph.port_target(1, 2) == 1
        assert graph.port_target(1, 3) == 1

    def test_port_target_out_of_range(self):
        graph = triangle(1)
        with pytest.raises(IndexError):
            graph.port_target(0, 3)

    def test_is_original_port(self):
        graph = triangle(2)
        assert graph.is_original_port(0)
        assert graph.is_original_port(1)
        assert not graph.is_original_port(2)

    def test_num_edges(self):
        assert triangle().num_edges() == 3
        assert families.cycle(10).num_edges() == 10

    def test_edge_list(self):
        assert triangle().edge_list() == [(0, 1), (0, 2), (1, 2)]

    def test_with_self_loops(self):
        graph = triangle(2).with_self_loops(5)
        assert graph.num_self_loops == 5
        assert graph.degree == 2

    def test_adjacency_is_readonly(self):
        graph = triangle()
        with pytest.raises(ValueError):
            graph.adjacency[0, 0] = 5


class TestTransitionMatrix:
    def test_rows_sum_to_one(self):
        matrix = triangle(2).transition_matrix()
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_entries(self):
        graph = triangle(2)  # d+ = 4
        matrix = graph.transition_matrix()
        assert matrix[0, 1] == pytest.approx(0.25)
        assert matrix[0, 0] == pytest.approx(0.5)

    def test_symmetric(self):
        matrix = families.random_regular(16, 4, seed=1).transition_matrix()
        np.testing.assert_allclose(matrix, matrix.T)

    def test_cached(self):
        graph = triangle()
        assert graph.transition_matrix() is graph.transition_matrix()


class TestMetricStructure:
    def test_distances_cycle(self):
        graph = families.cycle(8)
        dist = graph.distances_from(0)
        assert dist[0] == 0
        assert dist[4] == 4
        assert dist[7] == 1

    def test_diameter_cycle(self):
        assert families.cycle(8).diameter() == 4
        assert families.cycle(9).diameter() == 4

    def test_diameter_complete(self):
        assert families.complete(6).diameter() == 1

    def test_eccentric_pair(self):
        graph = families.cycle(10)
        u, w = graph.eccentric_pair()
        assert graph.distances_from(u)[w] == 5

    def test_odd_girth_odd_cycle(self):
        assert families.cycle(9).odd_girth() == 9

    def test_odd_girth_even_cycle_is_bipartite(self):
        assert families.cycle(8).odd_girth() is None
        assert families.cycle(8).is_bipartite()

    def test_odd_girth_petersen(self):
        assert families.petersen().odd_girth() == 5

    def test_hypercube_bipartite(self):
        assert families.hypercube(3).is_bipartite()

    def test_is_connected(self):
        assert families.cycle(5).is_connected()


class TestInterop:
    def test_from_networkx(self):
        import networkx as nx

        graph = BalancingGraph.from_networkx(nx.cycle_graph(6))
        assert graph.num_nodes == 6
        assert graph.degree == 2
        assert graph.num_self_loops == 2  # defaults to d

    def test_from_networkx_rejects_irregular(self):
        import networkx as nx

        with pytest.raises(GraphValidationError, match="not regular"):
            BalancingGraph.from_networkx(nx.path_graph(4))

    def test_to_networkx_roundtrip(self):
        graph = families.petersen()
        back = BalancingGraph.from_networkx(graph.to_networkx(), 3)
        assert back.edge_list() == graph.edge_list()

    def test_from_edge_list(self):
        graph = BalancingGraph.from_edge_list(
            3, [(0, 1), (1, 2), (2, 0)], 2
        )
        assert graph.degree == 2
        assert graph.num_self_loops == 2

    def test_from_edge_list_rejects_irregular(self):
        with pytest.raises(GraphValidationError, match="not regular"):
            BalancingGraph.from_edge_list(3, [(0, 1), (1, 2)])

    def test_describe(self):
        info = triangle(2).describe()
        assert info["n"] == 3
        assert info["d_plus"] == 4


class TestMemoryEstimate:
    def test_structured_smaller_than_dense(self):
        from repro.graphs.balancing import estimate_memory_bytes

        for d_plus in (8, 16, 64):
            assert estimate_memory_bytes(
                1000, d_plus, engine="dense"
            ) > estimate_memory_bytes(1000, d_plus, engine="structured")
        # Gather temporary scales with the original degree, not d+.
        assert estimate_memory_bytes(
            1000, 64, engine="structured", degree=2
        ) < estimate_memory_bytes(1000, 64, engine="structured")

    def test_unknown_engine_rejected(self):
        from repro.graphs.balancing import estimate_memory_bytes

        with pytest.raises(ValueError, match="unknown engine"):
            estimate_memory_bytes(1000, 4, engine="warp")

    # -- per-backend operator terms vs measured nbytes ------------------
    #
    # The estimates are planning numbers, but their *operator* terms
    # are exact formulas for the arrays the backends actually allocate.
    # Pin each term against measured nbytes at small n so a backend
    # data-structure change cannot silently drift the planner.

    def _graph(self, n=64):
        from repro.graphs import families

        # cycle + 2 self-loops: d = 2, d+ = 4 (the paper's d+ = 2d).
        return families.cycle(n, num_self_loops=2)

    def test_spmm_term_matches_operator_nbytes(self):
        from repro.engines.spmm import _GatherOperator
        from repro.graphs.balancing import estimate_memory_bytes

        graph = self._graph()
        matrix = _GatherOperator(graph).matrix
        measured = (
            matrix.data.nbytes
            + matrix.indices.nbytes
            + matrix.indptr.nbytes
        )
        n, d_plus = graph.num_nodes, graph.total_degree
        estimated = estimate_memory_bytes(
            n, d_plus, engine="spmm", degree=graph.degree
        ) - estimate_memory_bytes(n, d_plus, engine="dense")
        assert estimated == measured

    def test_compiled_term_matches_operator_nbytes(self):
        from repro.engines.compiled import _RotorOperator
        from repro.graphs.balancing import estimate_memory_bytes

        graph = self._graph()
        ops = _RotorOperator(graph)
        measured = (
            ops.matrix.data.nbytes
            + ops.matrix.indices.nbytes
            + ops.matrix.indptr.nbytes
            + ops.offsets.nbytes
            + ops.hits.nbytes
            + ops.values.nbytes
        )
        n, d_plus = graph.num_nodes, graph.total_degree
        estimated = estimate_memory_bytes(
            n, d_plus, engine="compiled", degree=graph.degree
        ) - estimate_memory_bytes(n, d_plus, engine="structured")
        assert estimated == measured

    def test_partitioned_term_matches_state_nbytes(self):
        import numpy as np

        from repro.algorithms.registry import make
        from repro.core.engine import Simulator
        from repro.engines.partitioned import PartitionedEngine
        from repro.graphs.balancing import estimate_memory_bytes

        graph = self._graph()
        loads = np.full(graph.num_nodes, 7, dtype=np.int64)
        sim = Simulator(
            graph,
            make("rotor_router"),
            loads,
            engine='partitioned:{"workers": 2, "inline": true}',
        )
        sim.run(2)
        engine = sim._backend
        assert isinstance(engine, PartitionedEngine)
        state = engine._states[id(graph)]
        measured = sum(
            halo.adj_local.nbytes for halo in state.book.halos
        )
        for pos in state.pos.values():
            measured += sum(a.nbytes for a in pos.pos_local)
            measured += sum(a.nbytes for a in pos.pos_rev)
        n, d_plus = graph.num_nodes, graph.total_degree
        estimated = estimate_memory_bytes(
            n, d_plus, engine="partitioned", degree=graph.degree
        ) - estimate_memory_bytes(n, d_plus, engine="structured")
        # Contiguous cycle partitions: no ghost slots beyond the four
        # round shm blocks the formula budgets on top of the arrays.
        assert estimated == measured + 8 * 4 * n

    def test_index_width_switches_past_int32(self):
        from repro.graphs.balancing import estimate_memory_bytes

        small = estimate_memory_bytes(10**6, 4, engine="spmm")
        # Past the int32 flat-column ceiling the index arrays double.
        huge_n = 2**31
        wide = estimate_memory_bytes(huge_n, 4, engine="spmm")
        dense_small = estimate_memory_bytes(10**6, 4, engine="dense")
        dense_wide = estimate_memory_bytes(huge_n, 4, engine="dense")
        per_node_small = (small - dense_small) / 10**6
        per_node_wide = (wide - dense_wide) / huge_n
        assert per_node_wide > per_node_small
