"""Unit tests for the spectral toolkit, against closed forms."""

import math

import numpy as np
import pytest

from repro.graphs import families, spectral


class TestEigenvalues:
    def test_descending_order(self):
        values = spectral.eigenvalues(families.cycle(8))
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_principal_eigenvalue_is_one(self):
        values = spectral.eigenvalues(families.petersen())
        assert values[0] == pytest.approx(1.0)

    def test_cycle_gap_matches_formula(self):
        for n in (8, 12, 20):
            graph = families.cycle(n)  # d° = 2
            assert spectral.eigenvalue_gap(graph) == pytest.approx(
                spectral.cycle_gap_formula(n, 2), rel=1e-9
            )

    def test_hypercube_gap_matches_formula(self):
        for dim in (3, 4):
            graph = families.hypercube(dim)
            assert spectral.eigenvalue_gap(graph) == pytest.approx(
                spectral.hypercube_gap_formula(dim, dim), rel=1e-9
            )

    def test_complete_gap_matches_formula(self):
        graph = families.complete(8)
        assert spectral.eigenvalue_gap(graph) == pytest.approx(
            spectral.complete_gap_formula(8, 7), rel=1e-9
        )

    def test_lazy_chain_is_positive(self):
        # d° >= d guarantees nonnegative spectrum.
        assert spectral.is_positive_chain(families.cycle(10))
        assert spectral.is_positive_chain(families.hypercube(3))

    def test_no_self_loops_can_be_negative(self):
        graph = families.cycle(8, num_self_loops=0)
        assert spectral.smallest_eigenvalue(graph) == pytest.approx(-1.0)
        assert not spectral.is_positive_chain(graph)


class TestStationary:
    def test_uniform(self):
        pi = spectral.stationary_distribution(families.cycle(5))
        np.testing.assert_allclose(pi, 0.2)

    def test_fixed_point(self):
        graph = families.petersen()
        matrix = graph.transition_matrix()
        pi = spectral.stationary_distribution(graph)
        np.testing.assert_allclose(matrix.T @ pi, pi, atol=1e-12)


class TestTimes:
    def test_balancing_time_grows_with_k(self):
        t1 = spectral.continuous_balancing_time(64, 10, 0.1)
        t2 = spectral.continuous_balancing_time(64, 1000, 0.1)
        assert t2 > t1

    def test_balancing_time_inverse_in_gap(self):
        t1 = spectral.continuous_balancing_time(64, 100, 0.2)
        t2 = spectral.continuous_balancing_time(64, 100, 0.1)
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_mixing_time_scale(self):
        assert spectral.mixing_time_scale(64, 0.5) == pytest.approx(
            6 * math.log(64) / 0.5
        )


class TestErrorMatrix:
    def test_error_decays(self):
        graph = families.complete(8)
        early = spectral.error_norm(graph, 1)
        late = spectral.error_norm(graph, 20)
        assert late < early
        assert late < 1e-6

    def test_error_zero_rows(self):
        graph = families.cycle(6)
        lam = spectral.error_matrix(graph, 3)
        # Each row of P^t sums to 1, so each Λt row sums to 0.
        np.testing.assert_allclose(lam.sum(axis=1), 0.0, atol=1e-12)

    def test_probability_current_decays(self):
        graph = families.hypercube(3)
        assert spectral.probability_current(
            graph, 20
        ) < spectral.probability_current(graph, 1)


class TestProfile:
    def test_profile_fields(self):
        graph = families.cycle(10)
        profile = spectral.spectral_profile(graph)
        assert profile.n == 10
        assert profile.d_plus == 4
        assert profile.gap == pytest.approx(
            spectral.eigenvalue_gap(graph)
        )
        assert profile.balancing_time(100) >= 1


class TestSparsePath:
    def test_sparse_matrix_matches_dense(self):
        for graph in (
            families.cycle(10),
            families.petersen(),
            families.cycle(7, num_self_loops=0),
        ):
            sparse = graph.transition_matrix_sparse()
            np.testing.assert_allclose(
                sparse.toarray(), graph.transition_matrix(), atol=1e-15
            )

    def test_sparse_matrix_is_canonical_and_cached(self):
        graph = families.hypercube(4)
        sparse = graph.transition_matrix_sparse()
        assert sparse.has_sorted_indices
        assert graph.transition_matrix_sparse() is sparse

    def test_large_n_second_eigenvalue_smoke(self):
        # n = 8192 > _DENSE_LIMIT forces the eigsh path, which must
        # never densify the (n, n) matrix; checked against the closed
        # form for the hypercube.
        dim = 13
        graph = families.hypercube(dim)
        assert graph.num_nodes > spectral._DENSE_LIMIT
        assert spectral.eigenvalue_gap(graph) == pytest.approx(
            spectral.hypercube_gap_formula(dim, dim), rel=1e-6
        )
        assert graph._transition_matrix is None  # never densified
