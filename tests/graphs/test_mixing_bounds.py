"""Numerical verification of the appendix's mixing estimates.

The proofs of Theorem 2.3 rest on quantitative mixing facts:

* Lemma A.1-style decay: ``‖Λ_t‖ <= n²(1-μ)^t`` — the error matrix
  dies geometrically at rate μ;
* the probability-current bound from [14] used for claim (i): for
  lazy chains (``P(u,u) >= 1/2``),
  ``max_w Σ_v |P^{a+1}(v,w) - P^a(v,w)| < 24/√a``;
* the claim (ii) mechanism: for positive chains the per-step current
  is controlled by the eigenvalue differences ``λ^{a+1} - λ^a``.

These are textbook facts, but the bounds' *constants* matter to the
paper's statements, so we check them numerically on several families.
"""

import numpy as np
import pytest

from repro.graphs import families
from repro.graphs.spectral import (
    eigenvalue_gap,
    error_norm,
    probability_current,
)


GRAPHS = {
    "cycle16": lambda: families.cycle(16),
    "hypercube4": lambda: families.hypercube(4),
    "petersen": lambda: families.petersen(),
    "expander": lambda: families.random_regular(16, 4, seed=41),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
class TestErrorDecay:
    def test_geometric_decay_bound(self, name):
        graph = GRAPHS[name]()
        n = graph.num_nodes
        gap = eigenvalue_gap(graph)
        for t in (1, 4, 16, 64):
            assert error_norm(graph, t) <= n**2 * (1 - gap) ** t + 1e-9

    def test_monotone_in_t(self, name):
        graph = GRAPHS[name]()
        values = [error_norm(graph, t) for t in (1, 2, 4, 8, 16)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))


@pytest.mark.parametrize("name", sorted(GRAPHS))
class TestProbabilityCurrent:
    def test_lazy_chain_inverse_sqrt_bound(self, name):
        """[14]'s bound used in Theorem 2.3(i): current < 24/sqrt(a)."""
        graph = GRAPHS[name]()  # all have d° = d, hence lazy
        for a in (1, 4, 9, 25):
            assert probability_current(graph, a) < 24 / np.sqrt(a)

    def test_current_at_zero_at_most_two(self, name):
        """The a = 0 case handled separately in the proof."""
        graph = GRAPHS[name]()
        assert probability_current(graph, 0) <= 2.0 + 1e-12

    def test_current_sum_bounded_by_sqrt_horizon(self, name):
        """Σ_{a<=A} current(a) = O(√A) — the partial sums claim (i)
        integrates; constant 48 from the proof's display."""
        graph = GRAPHS[name]()
        horizon = 36
        total = sum(
            probability_current(graph, a) for a in range(1, horizon)
        )
        assert total <= 48 * np.sqrt(horizon)


class TestClaimIiMechanism:
    def test_telescoping_eigenvalue_sum(self):
        """Claim (ii): Σ_a |λ^{a+1} - λ^a| telescopes to <= 1 for
        λ in [0, 1] — the positivity of the lazy chain is what makes
        the √n bound work."""
        for lam in (0.0, 0.3, 0.9, 0.99):
            total = sum(
                abs(lam ** (a + 1) - lam**a) for a in range(200)
            )
            assert total <= 1.0 + 1e-9

    def test_nonlazy_chain_breaks_telescoping(self):
        """With λ = -1 (bipartite, no self-loops) the sum diverges —
        why claim (ii) requires d° >= d."""
        lam = -1.0
        total = sum(abs(lam ** (a + 1) - lam**a) for a in range(50))
        assert total > 50
