"""Unit tests for adjacency validation and the reverse-port map."""

import numpy as np
import pytest

from repro.graphs.errors import GraphValidationError
from repro.graphs.validation import (
    is_connected,
    require_connected,
    reverse_port_map,
    validate_adjacency,
)


def triangle():
    return np.array([[1, 2], [0, 2], [0, 1]], dtype=np.int64)


class TestValidateAdjacency:
    def test_accepts_triangle(self):
        out = validate_adjacency(triangle())
        assert out.dtype == np.int64
        assert out.shape == (3, 2)

    def test_rejects_1d(self):
        with pytest.raises(GraphValidationError, match="2-dimensional"):
            validate_adjacency(np.array([0, 1, 2]))

    def test_rejects_empty(self):
        with pytest.raises(GraphValidationError):
            validate_adjacency(np.empty((0, 2), dtype=np.int64))

    def test_rejects_out_of_range(self):
        bad = triangle()
        bad[0, 0] = 7
        with pytest.raises(GraphValidationError, match="lie in"):
            validate_adjacency(bad)

    def test_rejects_negative(self):
        bad = triangle()
        bad[1, 1] = -1
        with pytest.raises(GraphValidationError):
            validate_adjacency(bad)

    def test_rejects_self_edge(self):
        bad = np.array([[0, 1], [0, 2], [0, 1]], dtype=np.int64)
        with pytest.raises(GraphValidationError, match="itself"):
            validate_adjacency(bad)

    def test_rejects_parallel_edges(self):
        bad = np.array([[1, 1], [0, 0]], dtype=np.int64)
        with pytest.raises(GraphValidationError, match="parallel"):
            validate_adjacency(bad)

    def test_rejects_asymmetric(self):
        # 0 lists 1 but 1 does not list 0.
        bad = np.array([[1, 2], [2, 3], [0, 1], [1, 0]], dtype=np.int64)
        with pytest.raises(GraphValidationError, match="not symmetric"):
            validate_adjacency(bad)

    def test_accepts_float_integers(self):
        out = validate_adjacency(triangle().astype(np.float64))
        assert out.dtype == np.int64


class TestReversePortMap:
    def test_triangle_roundtrip(self):
        adjacency = validate_adjacency(triangle())
        reverse = reverse_port_map(adjacency)
        n, d = adjacency.shape
        for u in range(n):
            for p in range(d):
                v = adjacency[u, p]
                assert adjacency[v, reverse[u, p]] == u

    def test_cycle_roundtrip(self):
        n = 8
        nodes = np.arange(n)
        adjacency = validate_adjacency(
            np.stack([(nodes - 1) % n, (nodes + 1) % n], axis=1)
        )
        reverse = reverse_port_map(adjacency)
        for u in range(n):
            for p in range(2):
                v = adjacency[u, p]
                assert adjacency[v, reverse[u, p]] == u


class TestConnectivity:
    def test_triangle_connected(self):
        assert is_connected(triangle())

    def test_two_triangles_disconnected(self):
        two = np.array(
            [[1, 2], [0, 2], [0, 1], [4, 5], [3, 5], [3, 4]],
            dtype=np.int64,
        )
        assert not is_connected(two)
        with pytest.raises(GraphValidationError, match="disconnected"):
            require_connected(two)
