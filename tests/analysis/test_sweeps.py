"""Unit tests for sweep helpers and power-law fits."""

import numpy as np
import pytest

from repro.analysis.sweeps import (
    bounded_ratio,
    fit_power_law,
    geometric_sizes,
    sweep,
)


class TestPowerLaw:
    def test_exact_square_law(self):
        xs = [1, 2, 4, 8, 16]
        ys = [x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_sqrt_law_with_constant(self):
        xs = np.array([4.0, 16.0, 64.0, 256.0])
        ys = 3.0 * np.sqrt(xs)
        fit = fit_power_law(xs, ys)
        assert fit.slope == pytest.approx(0.5)
        assert fit.predict(100.0) == pytest.approx(30.0, rel=1e-6)

    def test_flat_data(self):
        fit = fit_power_law([1, 2, 4], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 3])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])


class TestBoundedRatio:
    def test_worst_ratio(self):
        assert bounded_ratio([2, 9], [1, 3]) == pytest.approx(3.0)

    def test_rejects_zero_prediction(self):
        with pytest.raises(ValueError):
            bounded_ratio([1], [0])


class TestSweep:
    def test_runs_over_grid(self):
        rows = sweep([1, 2, 3], lambda x: {"x": x, "y": x * x})
        assert [row["y"] for row in rows] == [1, 4, 9]


class TestGeometricSizes:
    def test_doubling(self):
        assert geometric_sizes(4, 32) == [4, 8, 16, 32]

    def test_no_duplicates_with_small_factor(self):
        sizes = geometric_sizes(3, 8, factor=1.3)
        assert sizes == sorted(set(sizes))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            geometric_sizes(10, 5)
        with pytest.raises(ValueError):
            geometric_sizes(1, 10, factor=1.0)
