"""Tests for CSV / JSONL export helpers."""

import csv

import pytest

from repro.analysis.export import (
    read_jsonl,
    trajectory_rows,
    write_csv,
    write_jsonl,
    write_trajectory_csv,
)


ROWS = [
    {"algorithm": "rotor_router", "disc": 3},
    {"algorithm": "send_floor", "disc": 7},
]


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "out.csv")
        with path.open() as handle:
            back = list(csv.DictReader(handle))
        assert back[0]["algorithm"] == "rotor_router"
        assert back[1]["disc"] == "7"

    def test_column_subset(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "out.csv", columns=["disc"])
        text = path.read_text()
        assert "algorithm" not in text

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "out.csv")


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = write_jsonl(ROWS, tmp_path / "rows.jsonl")
        assert read_jsonl(path) == ROWS

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert read_jsonl(path) == [{"a": 1}, {"a": 2}]


class TestTrajectory:
    def test_rows(self):
        rows = trajectory_rows([10, 8, 5], value_name="disc")
        assert rows == [
            {"round": 0, "disc": 10},
            {"round": 1, "disc": 8},
            {"round": 2, "disc": 5},
        ]

    def test_stride(self):
        rows = trajectory_rows([9, 9, 9, 9, 9], stride=2)
        assert [row["round"] for row in rows] == [0, 2, 4]

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            trajectory_rows([1], stride=0)

    def test_write_trajectory(self, tmp_path):
        path = write_trajectory_csv([5, 4, 3], tmp_path / "traj.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "round,discrepancy"
        assert lines[1] == "0,5"
