"""Tests for CSV / JSONL export helpers."""

import csv

import pytest

from repro.analysis.export import (
    read_jsonl,
    trajectory_rows,
    write_csv,
    write_jsonl,
    write_trajectory_csv,
)


ROWS = [
    {"algorithm": "rotor_router", "disc": 3},
    {"algorithm": "send_floor", "disc": 7},
]


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "out.csv")
        with path.open() as handle:
            back = list(csv.DictReader(handle))
        assert back[0]["algorithm"] == "rotor_router"
        assert back[1]["disc"] == "7"

    def test_column_subset(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "out.csv", columns=["disc"])
        text = path.read_text()
        assert "algorithm" not in text

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "out.csv")


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = write_jsonl(ROWS, tmp_path / "rows.jsonl")
        assert read_jsonl(path) == ROWS

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert read_jsonl(path) == [{"a": 1}, {"a": 2}]


class TestTrajectory:
    def test_rows(self):
        rows = trajectory_rows([10, 8, 5], value_name="disc")
        assert rows == [
            {"round": 0, "disc": 10},
            {"round": 1, "disc": 8},
            {"round": 2, "disc": 5},
        ]

    def test_stride(self):
        rows = trajectory_rows([9, 9, 9, 9, 9], stride=2)
        assert [row["round"] for row in rows] == [0, 2, 4]

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            trajectory_rows([1], stride=0)

    def test_write_trajectory(self, tmp_path):
        path = write_trajectory_csv([5, 4, 3], tmp_path / "traj.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "round,discrepancy"
        assert lines[1] == "0,5"


class TestTraceExport:
    def _trace(self):
        from repro.core.trace import Trace

        trace = Trace()
        trace.add_column("discrepancy", [0, 1, 2], [10, 5, 2])
        trace.add_column("phi", [0, 2], [7, 1])
        return trace

    def test_write_trace_csv(self, tmp_path):
        from repro.analysis.export import write_trace_csv

        path = write_trace_csv(self._trace(), tmp_path / "trace.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "round,discrepancy,phi"
        assert lines[1] == "0,10,7"
        assert lines[2] == "1,5,"  # outer-join hole

    def test_write_trace_csv_empty_rejected(self, tmp_path):
        import pytest

        from repro.analysis.export import write_trace_csv
        from repro.core.trace import Trace

        with pytest.raises(ValueError):
            write_trace_csv(Trace(), tmp_path / "trace.csv")

    def test_write_trace_json_round_trips(self, tmp_path):
        import json

        from repro.analysis.export import write_trace_json
        from repro.core.trace import Trace

        path = write_trace_json(self._trace(), tmp_path / "trace.json")
        rebuilt = Trace.from_dict(json.loads(path.read_text()))
        assert rebuilt.series("phi") == ([0, 2], [7, 1])

    def test_records_jsonl_round_trip(self, tmp_path):
        from repro.analysis.export import (
            read_jsonl,
            record_rows,
            write_records_jsonl,
        )
        from repro.core.trace import RunRecord, build_record

        records = [
            build_record(
                replica=i,
                rounds_executed=3,
                stopped_early=False,
                engine_summary={"final_discrepancy": i},
                discrepancy_history=[5, 3, i],
            )
            for i in range(2)
        ]
        path = write_records_jsonl(records, tmp_path / "records.jsonl")
        rebuilt = [RunRecord.from_dict(r) for r in read_jsonl(path)]
        assert [r.summary["final_discrepancy"] for r in rebuilt] == [0, 1]
        rows = record_rows(records)
        assert rows[1]["replica"] == 1
        assert rows[1]["rounds"] == 3

    def test_read_records_jsonl_inverse(self, tmp_path):
        from repro.analysis.export import (
            read_records_jsonl,
            write_records_jsonl,
        )
        from repro.core.trace import build_record

        records = [
            build_record(
                replica=i,
                rounds_executed=4,
                stopped_early=bool(i),
                engine_summary={"final_discrepancy": 2 * i},
                discrepancy_history=[9, 4, 3, 2 * i],
            )
            for i in range(3)
        ]
        path = write_records_jsonl(records, tmp_path / "records.jsonl")
        rebuilt = read_records_jsonl(path)
        assert [r.to_dict() for r in rebuilt] == [
            r.to_dict() for r in records
        ]
