"""Unit tests for table rendering."""

from repro.analysis.tables import (
    ratio_column,
    render_markdown_table,
    render_table,
)


ROWS = [
    {"name": "alpha", "value": 1.5, "ok": True},
    {"name": "beta", "value": None, "ok": False},
]


class TestTextTable:
    def test_contains_header_and_rows(self):
        text = render_table(ROWS, title="demo")
        assert "demo" in text
        assert "alpha" in text
        assert "beta" in text

    def test_none_rendered_as_dash(self):
        text = render_table(ROWS)
        assert "-" in text.splitlines()[-1]

    def test_bool_rendering(self):
        text = render_table(ROWS)
        assert "yes" in text
        assert "no" in text

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_column_selection(self):
        text = render_table(ROWS, columns=["name"])
        assert "value" not in text

    def test_large_float_formatting(self):
        text = render_table([{"x": 123456.789}])
        assert "1.23e+05" in text

    def test_small_float_formatting(self):
        text = render_table([{"x": 0.00123}])
        assert "0.00123" in text


class TestMarkdownTable:
    def test_structure(self):
        text = render_markdown_table(ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| name")
        assert set(lines[1].replace("|", "").strip()) <= {"-", " "}
        assert len(lines) == 4

    def test_empty(self):
        assert render_markdown_table([]) == "(no rows)"


class TestRatioColumn:
    def test_ratio_added(self):
        rows = [{"m": 10.0, "p": 5.0}, {"m": 1.0, "p": 0.0}]
        out = ratio_column(rows, "m", "p")
        assert out[0]["ratio"] == 2.0
        assert out[1]["ratio"] is None
