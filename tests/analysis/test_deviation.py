"""Tests for the discrete-vs-continuous deviation machinery."""

import pytest

from repro.algorithms import make
from repro.analysis.deviation import (
    deviation_is_bounded,
    deviation_report,
    deviation_trajectory,
)
from repro.core.loads import point_mass
from repro.graphs import families


@pytest.fixture(scope="module")
def graph():
    return families.random_regular(24, 4, seed=31)


class TestTrajectory:
    def test_starts_at_zero(self, graph):
        history = deviation_trajectory(
            graph, make("rotor_router"), point_mass(24, 240), 10
        )
        assert history[0] == 0.0
        assert len(history) == 11

    def test_nonnegative(self, graph):
        history = deviation_trajectory(
            graph, make("send_floor"), point_mass(24, 240), 20
        )
        assert all(value >= 0 for value in history)

    def test_zero_for_balanced_divisible_start(self, graph):
        import numpy as np

        loads = np.full(24, 4 * graph.total_degree, dtype=np.int64)
        history = deviation_trajectory(
            graph, make("send_floor"), loads, 10
        )
        assert max(history) == 0.0


class TestReport:
    def test_fair_balancers_bounded(self, graph):
        """The paper's claim: deviation is O(error scale) on expanders."""
        for name in ("rotor_router", "send_floor", "send_rounded"):
            report = deviation_report(
                graph, make(name), point_mass(24, 24 * 64), 120
            )
            assert deviation_is_bounded(report, tolerance_factor=4.0), (
                name,
                report.max_deviation,
                report.error_scale,
            )

    def test_report_fields(self, graph):
        report = deviation_report(
            graph, make("rotor_router"), point_mass(24, 240), 30
        )
        assert report.rounds == 30
        assert report.max_deviation >= report.final_deviation >= 0
        assert report.error_scale == 2 * graph.total_degree
        data = report.as_dict()
        assert data["normalized_max"] == pytest.approx(
            report.max_deviation / report.error_scale
        )


class TestExperiment:
    def test_driver_rows(self):
        from repro.experiments.deviation import (
            DeviationConfig,
            run_deviation,
        )

        result = run_deviation(
            DeviationConfig(n=32, degree=4, rounds=60, tokens_per_node=16)
        )
        by_name = {
            row["algorithm"]: row["max/scale"] for row in result.rows
        }
        for name in ("rotor_router", "send_floor", "send_rounded"):
            assert by_name[name] <= 4.0
        # The adversary deviates at least as much as the fair schemes.
        fair_worst = max(
            by_name["rotor_router"],
            by_name["send_floor"],
            by_name["send_rounded"],
        )
        assert by_name["arbitrary_rounding_fixed"] >= fair_worst
