"""Unit tests for the standardized convergence measurements."""

import pytest

from repro.algorithms import RotorRouter, SendFloor
from repro.analysis.convergence import (
    discrepancy_trajectory,
    horizon_for,
    measure_after_t,
    measure_time_to_target,
)
from repro.core.loads import point_mass
from repro.graphs import families


@pytest.fixture(scope="module")
def graph():
    return families.random_regular(24, 4, seed=13)


class TestHorizon:
    def test_horizon_positive(self, graph):
        assert horizon_for(graph, point_mass(24, 240)) >= 1

    def test_horizon_scales_with_multiplier(self, graph):
        loads = point_mass(24, 240)
        base = horizon_for(graph, loads, 1.0)
        double = horizon_for(graph, loads, 2.0)
        assert double == pytest.approx(2 * base, abs=1)

    def test_explicit_gap_respected(self, graph):
        loads = point_mass(24, 240)
        slow = horizon_for(graph, loads, 1.0, gap=0.01)
        fast = horizon_for(graph, loads, 1.0, gap=0.5)
        assert slow > fast


class TestMeasureAfterT:
    def test_report_fields(self, graph):
        report = measure_after_t(
            graph, RotorRouter(), point_mass(24, 24 * 16)
        )
        assert report.algorithm == "rotor_router"
        assert report.n == 24
        assert report.rounds_executed == report.horizon
        assert report.final_discrepancy <= report.initial_discrepancy
        assert report.plateau_discrepancy >= report.final_discrepancy - 1

    def test_max_rounds_caps_horizon(self, graph):
        report = measure_after_t(
            graph,
            SendFloor(),
            point_mass(24, 24 * 16),
            max_rounds=5,
        )
        assert report.rounds_executed == 5

    def test_as_dict_roundtrip(self, graph):
        report = measure_after_t(
            graph, SendFloor(), point_mass(24, 240)
        )
        data = report.as_dict()
        assert data["algorithm"] == "send_floor"
        assert "plateau" in data


class TestMeasureTimeToTarget:
    def test_reaches_target(self, graph):
        report = measure_time_to_target(
            graph,
            RotorRouter(),
            point_mass(24, 24 * 16),
            target=8,
        )
        assert report.time_to_target is not None
        assert report.final_discrepancy <= 8
        assert report.target == 8

    def test_unreachable_target_returns_none(self, graph):
        # Discrepancy 0 usually unreachable when n does not divide m.
        report = measure_time_to_target(
            graph,
            SendFloor(),
            point_mass(24, 24 * 16 + 7),
            target=0,
            max_multiplier=0.05,
        )
        assert report.time_to_target is None


class TestTrajectory:
    def test_series_shapes(self, graph):
        rounds, series = discrepancy_trajectory(
            graph, RotorRouter(), point_mass(24, 240), rounds=20
        )
        assert rounds.shape == series.shape
        assert series[0] == 240

    def test_stride(self, graph):
        rounds, series = discrepancy_trajectory(
            graph, SendFloor(), point_mass(24, 240), rounds=20, stride=5
        )
        assert list(rounds) == [0, 5, 10, 15, 20]
