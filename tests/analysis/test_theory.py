"""Unit tests for the theory-bound formulas."""

import math

import pytest

from repro.analysis import theory


class TestHorizons:
    def test_balancing_time_monotone_in_k(self):
        assert theory.balancing_time(64, 1000, 0.1) > theory.balancing_time(
            64, 10, 0.1
        )

    def test_balancing_time_inverse_in_gap(self):
        assert theory.balancing_time(64, 10, 0.05) == pytest.approx(
            2 * theory.balancing_time(64, 10, 0.1)
        )

    def test_good_balancer_time_decreases_in_s(self):
        slow = theory.good_balancer_time(128, 100, 0.1, degree=8, s=1)
        fast = theory.good_balancer_time(128, 100, 0.1, degree=8, s=8)
        assert fast < slow


class TestUpperBounds:
    def test_rabani_dominates_claim_i(self):
        # d log n / mu >= d sqrt(log n / mu) whenever log n / mu >= 1.
        n, d, gap = 256, 8, 0.05
        assert theory.rabani_bound(n, d, gap) >= (
            theory.cumulative_fair_bound_i(n, d, gap, delta=0)
        )

    def test_claim_selection_on_expander(self):
        # Good expansion: claim (i) is the minimum.
        n, d, gap = 1024, 8, 0.3
        combined = theory.cumulative_fair_bound(n, d, gap, d_plus=2 * d)
        assert combined == pytest.approx(
            theory.cumulative_fair_bound_i(n, d, gap)
        )

    def test_claim_selection_on_cycle(self):
        # Terrible expansion: claim (ii) wins.
        n, d, gap = 400, 2, 1e-4
        combined = theory.cumulative_fair_bound(n, d, gap, d_plus=4)
        assert combined == pytest.approx(
            theory.cumulative_fair_bound_ii(n, d)
        )

    def test_claim_iii_only_without_loops(self):
        n, d, gap = 256, 4, 0.1
        combined = theory.cumulative_fair_bound(n, d, gap, d_plus=d + 1)
        assert combined == pytest.approx(
            theory.cumulative_fair_bound_iii(n, d, gap)
        )

    def test_delta_scales_linearly(self):
        n, d, gap = 128, 4, 0.1
        assert theory.cumulative_fair_bound_i(
            n, d, gap, delta=3
        ) == pytest.approx(
            2 * theory.cumulative_fair_bound_i(n, d, gap, delta=1)
        )

    def test_good_balancer_bound_explicit(self):
        assert theory.good_balancer_bound(12, 6, delta=1) == 60

    def test_mimicking_bound(self):
        assert theory.mimicking_bound(8) == 16

    def test_randomized_rounding_bound(self):
        assert theory.randomized_rounding_bound(
            256, 9
        ) == pytest.approx(math.sqrt(9 * math.log(256)))


class TestLowerBounds:
    def test_round_fair_lower_bound(self):
        assert theory.round_fair_lower_bound(4, 10) == 36

    def test_stateless_lower_bound(self):
        assert theory.stateless_lower_bound(12) == 5

    def test_rotor_lower_bound(self):
        assert theory.rotor_no_selfloop_lower_bound(2, 9) == 8


class TestPredictions:
    def test_every_registered_algorithm_has_prediction(self):
        from repro.algorithms.registry import REGISTRY

        for name in REGISTRY:
            value = theory.predicted_after_t(name, 128, 8, 0.1, 16)
            assert value > 0

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            theory.predicted_after_t("quantum", 128, 8, 0.1)

    def test_table1_rows_well_formed(self):
        for row in theory.TABLE1_ROWS:
            assert row.bound_description
            assert isinstance(row.reaches_o_d, bool)
