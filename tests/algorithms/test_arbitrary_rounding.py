"""Unit tests for the [17] round-fair class with pluggable policies."""

import numpy as np

from repro.algorithms import (
    ArbitraryRoundingDiffusion,
    FixedPriorityPolicy,
    RandomPolicy,
)
from repro.core.engine import Simulator
from repro.core.loads import point_mass

from tests.helpers import run_monitored, spread_loads


class TestFixedPriority:
    def test_extras_to_lowest_ports(self, expander24):
        balancer = ArbitraryRoundingDiffusion(FixedPriorityPolicy())
        balancer.bind(expander24)
        d_plus = expander24.total_degree
        loads = np.full(24, d_plus + 3, dtype=np.int64)
        sends = balancer.sends(loads, 1)
        assert (sends[:, :3] == 2).all()
        assert (sends[:, 3:] == 1).all()

    def test_round_fair(self, expander24):
        balancer = ArbitraryRoundingDiffusion(FixedPriorityPolicy())
        balancer.bind(expander24)
        loads = spread_loads(24, seed=41)
        sends = balancer.sends(loads, 1)
        d_plus = expander24.total_degree
        floor = (loads // d_plus)[:, None]
        assert (sends >= floor).all()
        assert (sends <= floor + 1).all()

    def test_is_deterministic_flagged(self):
        balancer = ArbitraryRoundingDiffusion(FixedPriorityPolicy())
        assert balancer.properties.deterministic

    def test_not_cumulatively_fair(self, expander24):
        """The fixed-priority member violates Def. 2.1 for any constant."""
        result, verdict, _, _ = run_monitored(
            expander24,
            ArbitraryRoundingDiffusion(FixedPriorityPolicy()),
            point_mass(24, 24 * 64),
            rounds=120,
        )
        assert verdict.round_fair  # member of [17]'s class...
        assert verdict.observed_delta > 3  # ...but cumulatively unfair


class TestRandomPolicy:
    def test_mask_has_exact_counts(self, expander24):
        policy = RandomPolicy(seed=5)
        extras = np.arange(24) % expander24.total_degree
        mask = policy.extra_mask(
            np.zeros(24, dtype=np.int64),
            extras,
            expander24.total_degree,
            1,
        )
        np.testing.assert_array_equal(mask.sum(axis=1), extras)

    def test_reproducible_after_reset(self, expander24):
        balancer = ArbitraryRoundingDiffusion(RandomPolicy(seed=9))
        balancer.bind(expander24)
        loads = spread_loads(24, seed=42)
        first = balancer.sends(loads, 1)
        balancer.reset()
        second = balancer.sends(loads, 1)
        np.testing.assert_array_equal(first, second)

    def test_flagged_nondeterministic(self):
        balancer = ArbitraryRoundingDiffusion(RandomPolicy(seed=1))
        assert not balancer.properties.deterministic

    def test_round_fair(self, expander24):
        balancer = ArbitraryRoundingDiffusion(RandomPolicy(seed=3))
        balancer.bind(expander24)
        loads = spread_loads(24, seed=43)
        sends = balancer.sends(loads, 1)
        d_plus = expander24.total_degree
        floor = (loads // d_plus)[:, None]
        assert (sends >= floor).all()
        assert (sends <= floor + 1).all()


class TestConvergence:
    def test_balances_eventually(self, expander24):
        simulator = Simulator(
            expander24,
            ArbitraryRoundingDiffusion(FixedPriorityPolicy()),
            point_mass(24, 24 * 64),
        )
        result = simulator.run(400)
        assert result.final_discrepancy < result.initial_discrepancy / 10
