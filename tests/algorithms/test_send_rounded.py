"""Unit tests for SEND([x/d+]) and its self-preference accounting."""

import numpy as np
import pytest

from repro.algorithms import SendRounded, effective_self_preference
from repro.algorithms.send_rounded import nearest_share
from repro.core.errors import BindingError
from repro.core.loads import point_mass
from repro.graphs import families

from tests.helpers import run_monitored, spread_loads


class TestNearestShare:
    def test_rounds_down_below_half(self):
        assert nearest_share(np.array([5]), 12)[0] == 0

    def test_rounds_up_at_half(self):
        assert nearest_share(np.array([6]), 12)[0] == 1

    def test_rounds_up_above_half(self):
        assert nearest_share(np.array([19]), 12)[0] == 2

    def test_exact_multiples(self):
        assert nearest_share(np.array([24]), 12)[0] == 2


class TestEffectiveSelfPreference:
    def test_zero_at_two_d(self):
        assert effective_self_preference(4, 8) == 0

    def test_positive_above_two_d(self):
        assert effective_self_preference(4, 9) == 1

    def test_capped_by_paper_value(self):
        # d=1, d+=10: paper says 8, token counting gives ceil((9-1)/2)=4.
        assert effective_self_preference(1, 10) == 4

    def test_omega_d_at_three_d(self):
        for d in (2, 4, 8):
            assert effective_self_preference(d, 3 * d) >= d // 2


class TestBinding:
    def test_rejects_too_few_self_loops(self):
        graph = families.cycle(6, num_self_loops=1)  # d+ = 3 < 2d = 4
        with pytest.raises(BindingError, match="2d"):
            SendRounded().bind(graph)

    def test_accepts_exactly_two_d(self):
        SendRounded().bind(families.cycle(6, num_self_loops=2))


class TestSends:
    def test_originals_get_nearest_share(self, expander24):
        balancer = SendRounded().bind(expander24)
        loads = spread_loads(24, seed=11)
        sends = balancer.sends(loads, 1)
        share = nearest_share(loads, expander24.total_degree)
        for port in range(expander24.degree):
            np.testing.assert_array_equal(sends[:, port], share)

    def test_round_fair(self, expander24):
        balancer = SendRounded().bind(expander24)
        loads = spread_loads(24, seed=12)
        sends = balancer.sends(loads, 1)
        d_plus = expander24.total_degree
        floor = (loads // d_plus)[:, None]
        ceil = (-(-loads // d_plus))[:, None]
        assert (sends >= floor).all()
        assert (sends <= ceil).all()

    def test_no_remainder(self, expander24):
        balancer = SendRounded().bind(expander24)
        loads = spread_loads(24, seed=13)
        sends = balancer.sends(loads, 1)
        np.testing.assert_array_equal(sends.sum(axis=1), loads)

    def test_exhaustive_small_loads(self):
        """Every load value up to 5·d+ obeys all Def. 3.1 constraints."""
        graph = families.cycle(3, num_self_loops=5)  # d=2, d+=7
        balancer = SendRounded().bind(graph)
        s = balancer.self_preference
        d_plus = graph.total_degree
        for x in range(5 * d_plus + 1):
            loads = np.full(3, x, dtype=np.int64)
            sends = balancer.sends(loads, 1)
            assert sends.sum(axis=1)[0] == x
            floor, excess = divmod(x, d_plus)
            assert sends.min() >= floor
            assert sends.max() <= floor + (1 if excess else 0)
            if excess:
                preferred = int(
                    (sends[0, graph.degree:] == floor + 1).sum()
                )
                assert preferred >= min(s, excess)


class TestClassMembership:
    def test_good_balancer_verdict(self):
        """Observation 3.2: SEND([x/d+]) is a good s-balancer, d+ > 2d."""
        graph = families.random_regular(24, 4, seed=6, num_self_loops=8)
        s = effective_self_preference(4, 12)
        result, verdict, _, _ = run_monitored(
            graph, SendRounded(), point_mass(24, 24 * 32), rounds=80, s=s
        )
        assert verdict.round_fair
        assert verdict.observed_delta == 0
        assert verdict.self_preferring
        assert verdict.is_good_balancer

    def test_reaches_o_d_discrepancy(self):
        from repro.core.engine import Simulator

        graph = families.random_regular(32, 4, seed=8, num_self_loops=12)
        simulator = Simulator(
            graph, SendRounded(), point_mass(32, 32 * 64)
        )
        simulator.run(600)
        bound = 3 * graph.total_degree + 4 * graph.num_self_loops
        assert simulator.discrepancy_history[-1] <= bound
