"""Unit tests for the ROTOR-ROUTER balancer."""

import numpy as np
import pytest

from repro.algorithms import RotorRouter, interleaved_port_order
from repro.core.engine import Simulator
from repro.core.errors import BindingError
from repro.core.loads import point_mass
from repro.graphs import families

from tests.helpers import run_monitored, spread_loads


class TestPortOrder:
    def test_interleaves(self):
        order = interleaved_port_order(2, 2)
        assert list(order) == [0, 2, 1, 3]

    def test_extra_loops_trail(self):
        order = interleaved_port_order(1, 3)
        assert list(order) == [0, 1, 2, 3]

    def test_no_loops(self):
        assert list(interleaved_port_order(3, 0)) == [0, 1, 2]


class TestMechanics:
    def test_divisible_load_sends_equal(self, expander24):
        balancer = RotorRouter().bind(expander24)
        d_plus = expander24.total_degree
        loads = np.full(24, 2 * d_plus, dtype=np.int64)
        sends = balancer.sends(loads, 1)
        assert (sends == 2).all()
        assert (balancer.rotors == 0).all()  # no extras, rotor fixed

    def test_extras_go_to_consecutive_ports(self):
        graph = families.cycle(4, num_self_loops=2)  # d+ = 4
        balancer = RotorRouter().bind(graph)
        loads = np.array([6, 0, 0, 0], dtype=np.int64)
        sends = balancer.sends(loads, 1)
        # rotor order interleaves [0, 2, 1, 3]; q=1, e=2 extras at
        # cyclic positions 0,1 -> ports 0 and 2.
        assert list(sends[0]) == [2, 1, 2, 1]
        assert balancer.rotors[0] == 2

    def test_rotor_advances_by_load_mod_dplus(self, expander24):
        balancer = RotorRouter().bind(expander24)
        d_plus = expander24.total_degree
        loads = spread_loads(24, seed=21)
        balancer.sends(loads, 1)
        np.testing.assert_array_equal(
            balancer.rotors, loads % d_plus
        )

    def test_round_fair_every_round(self, expander24):
        balancer = RotorRouter().bind(expander24)
        loads = spread_loads(24, seed=22)
        d_plus = expander24.total_degree
        sends = balancer.sends(loads, 1)
        floor = (loads // d_plus)[:, None]
        assert (sends >= floor).all()
        assert (sends <= floor + 1).all()

    def test_sends_everything(self, expander24):
        balancer = RotorRouter().bind(expander24)
        loads = spread_loads(24, seed=23)
        sends = balancer.sends(loads, 1)
        np.testing.assert_array_equal(sends.sum(axis=1), loads)

    def test_reset_restores_rotors(self, expander24):
        balancer = RotorRouter().bind(expander24)
        balancer.sends(spread_loads(24, seed=24), 1)
        balancer.reset()
        assert (balancer.rotors == 0).all()

    def test_works_without_self_loops(self):
        graph = families.cycle(5, num_self_loops=0)
        balancer = RotorRouter().bind(graph)
        loads = np.array([5, 0, 0, 0, 0], dtype=np.int64)
        sends = balancer.sends(loads, 1)
        assert sends.sum() == 5


class TestCustomConfiguration:
    def test_custom_orders_validated(self):
        graph = families.cycle(4)
        bad = np.zeros((4, 4), dtype=np.int64)
        with pytest.raises(BindingError, match="permutation"):
            RotorRouter(port_orders=bad).bind(graph)

    def test_custom_orders_shape_checked(self):
        graph = families.cycle(4)
        with pytest.raises(BindingError, match="shape"):
            RotorRouter(
                port_orders=np.zeros((2, 2), dtype=np.int64)
            ).bind(graph)

    def test_custom_rotors_range_checked(self):
        graph = families.cycle(4)
        with pytest.raises(BindingError, match="lie in"):
            RotorRouter(
                initial_rotors=np.array([0, 0, 9, 0])
            ).bind(graph)

    def test_custom_rotors_used(self):
        graph = families.cycle(4, num_self_loops=0)
        balancer = RotorRouter(
            initial_rotors=np.array([1, 0, 0, 0])
        ).bind(graph)
        loads = np.array([1, 0, 0, 0], dtype=np.int64)
        sends = balancer.sends(loads, 1)
        assert sends[0, 1] == 1  # extra starts at cyclic position 1


class TestClassMembership:
    def test_cumulatively_one_fair(self, expander24):
        """Observation 2.2: ROTOR-ROUTER is cumulatively 1-fair."""
        result, verdict, _, _ = run_monitored(
            expander24, RotorRouter(), point_mass(24, 24 * 64), rounds=80
        )
        assert verdict.at_least_floor
        assert verdict.round_fair
        assert verdict.observed_delta <= 1

    def test_balances_on_torus(self, torus9):
        simulator = Simulator(torus9, RotorRouter(), point_mass(9, 900))
        result = simulator.run(300)
        assert result.final_discrepancy <= 2 * torus9.degree

    def test_determinism_across_instances(self, expander24):
        a = Simulator(expander24, RotorRouter(), point_mass(24, 517))
        b = Simulator(expander24, RotorRouter(), point_mass(24, 517))
        for _ in range(20):
            np.testing.assert_array_equal(a.step(), b.step())


class TestPortOrderVectorized:
    """Regression: the strided assembly must match the pop-loop original."""

    @staticmethod
    def _reference(degree: int, num_self_loops: int) -> list[int]:
        order: list[int] = []
        originals = list(range(degree))
        loops = list(range(degree, degree + num_self_loops))
        while originals or loops:
            if originals:
                order.append(originals.pop(0))
            if loops:
                order.append(loops.pop(0))
        return order

    @pytest.mark.parametrize("degree", [1, 2, 3, 4, 6, 12, 20])
    @pytest.mark.parametrize("num_self_loops", [0, 1, 2, 3, 5, 12, 21])
    def test_matches_reference(self, degree, num_self_loops):
        order = interleaved_port_order(degree, num_self_loops)
        assert order.dtype == np.int64
        assert list(order) == self._reference(degree, num_self_loops)

    def test_fat_tree_core_degree(self):
        # The case that motivated the rewrite: high-degree core
        # switches (d = k^2/4 uplinks plus padding loops).
        assert list(interleaved_port_order(64, 65)) == self._reference(
            64, 65
        )


class TestRefreshCounterContract:
    """Regression: reset() must zero the incrementality counters.

    The counters describe one run; without zeroing they bleed across
    replicas/reruns of a single balancer instance (bind() calls
    reset() before every run).
    """

    def test_reset_zeroes_refresh_counters(self, expander24):
        balancer = RotorRouter().bind(expander24)
        balancer.refresh_topology(expander24, np.array([0, 1, 2]))
        balancer.refresh_topology(expander24, None)
        assert balancer.refresh_rows == 3
        assert balancer.refresh_full == 1
        balancer.reset()
        assert balancer.refresh_rows == 0
        assert balancer.refresh_full == 0

    def test_rebind_starts_a_fresh_count(self, expander24):
        balancer = RotorRouter().bind(expander24)
        balancer.refresh_topology(expander24, np.array([4, 5]))
        assert balancer.refresh_rows == 2
        balancer.bind(expander24)  # a rerun rebinds the same instance
        assert balancer.refresh_rows == 0
        assert balancer.refresh_full == 0
