"""Unit tests for the continuous-mimicking baseline ([4])."""

import numpy as np

from repro.algorithms import ContinuousMimicking
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.graphs import families

from tests.helpers import spread_loads


class TestTracking:
    def test_bounded_error_property(self, expander24):
        """|F_t(e) - C_t(e)| <= 1/2 for every edge at every time."""
        balancer = ContinuousMimicking()
        simulator = Simulator(
            expander24, balancer, point_mass(24, 24 * 64)
        )
        for _ in range(60):
            simulator.step()
            assert balancer.tracking_error <= 0.5 + 1e-9

    def test_flows_nonnegative(self, expander24):
        balancer = ContinuousMimicking().bind(expander24)
        loads = spread_loads(24, seed=71)
        for t in range(1, 30):
            sends = balancer.sends(loads, t)
            assert sends.min() >= 0

    def test_reset_clears_state(self, expander24):
        balancer = ContinuousMimicking().bind(expander24)
        loads = point_mass(24, 240)
        first = balancer.sends(loads, 1).copy()
        balancer.reset()
        second = balancer.sends(loads, 1)
        np.testing.assert_array_equal(first, second)

    def test_deterministic(self, expander24):
        a = Simulator(
            expander24, ContinuousMimicking(), point_mass(24, 517)
        )
        b = Simulator(
            expander24, ContinuousMimicking(), point_mass(24, 517)
        )
        for _ in range(25):
            np.testing.assert_array_equal(a.step(), b.step())


class TestDiscrepancy:
    def test_reaches_two_d(self, expander24):
        """[4]: discrepancy 2d after T (we allow the budget to be ample)."""
        simulator = Simulator(
            expander24, ContinuousMimicking(), point_mass(24, 24 * 64)
        )
        result = simulator.run(400)
        assert result.final_discrepancy <= 2 * expander24.degree

    def test_reaches_two_d_on_cycle(self):
        graph = families.cycle(16)
        simulator = Simulator(
            graph, ContinuousMimicking(), point_mass(16, 16 * 32)
        )
        result = simulator.run(3000)
        assert result.final_discrepancy <= 2 * graph.degree

    def test_can_go_negative_with_tiny_loads(self):
        """The paper's caveat: insufficient load => negative values."""
        from repro.core.monitors import LoadBoundsMonitor

        graph = families.cycle(12)
        loads = np.zeros(12, dtype=np.int64)
        loads[0] = 6
        monitor = LoadBoundsMonitor()
        simulator = Simulator(
            graph, ContinuousMimicking(), loads, monitors=(monitor,)
        )
        simulator.run(40)
        # Token count is conserved regardless.
        assert simulator.loads.sum() == 6
