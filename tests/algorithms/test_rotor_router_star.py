"""Unit tests for ROTOR-ROUTER* (including the generalized s variant)."""

import numpy as np
import pytest

from repro.algorithms import RotorRouterStar
from repro.core.engine import Simulator
from repro.core.errors import BindingError
from repro.core.loads import point_mass
from repro.graphs import families

from tests.helpers import run_monitored, spread_loads


class TestBinding:
    def test_requires_self_loop(self):
        graph = families.cycle(5, num_self_loops=0)
        with pytest.raises(BindingError, match="needs d"):
            RotorRouterStar().bind(graph)

    def test_requires_enough_loops_for_s(self):
        graph = families.cycle(5, num_self_loops=2)
        with pytest.raises(BindingError, match="special"):
            RotorRouterStar(num_special=3).bind(graph)

    def test_rejects_zero_special(self):
        with pytest.raises(ValueError):
            RotorRouterStar(num_special=0)


class TestMechanics:
    def test_special_port_gets_ceiling(self, expander24):
        balancer = RotorRouterStar().bind(expander24)
        loads = spread_loads(24, seed=31)
        sends = balancer.sends(loads, 1)
        ceil = -(-loads // expander24.total_degree)
        excess = loads % expander24.total_degree
        special = sends[:, balancer.special_ports[0]]
        # Ceiling whenever the load does not divide evenly.
        np.testing.assert_array_equal(
            special, np.where(excess > 0, ceil, loads // expander24.total_degree)
        )

    def test_round_fair(self, expander24):
        balancer = RotorRouterStar().bind(expander24)
        loads = spread_loads(24, seed=32)
        sends = balancer.sends(loads, 1)
        d_plus = expander24.total_degree
        floor = (loads // d_plus)[:, None]
        ceil = (-(-loads // d_plus))[:, None]
        assert (sends >= floor).all()
        assert (sends <= ceil).all()

    def test_no_remainder(self, expander24):
        balancer = RotorRouterStar().bind(expander24)
        loads = spread_loads(24, seed=33)
        sends = balancer.sends(loads, 1)
        np.testing.assert_array_equal(sends.sum(axis=1), loads)

    def test_generalized_s_gives_min_s_e_ceilings(self):
        graph = families.random_regular(12, 4, seed=3, num_self_loops=6)
        balancer = RotorRouterStar(num_special=3).bind(graph)
        d_plus = graph.total_degree  # 10
        for x in range(4 * d_plus):
            loads = np.full(12, x, dtype=np.int64)
            balancer.reset()
            sends = balancer.sends(loads, 1)
            floor, excess = divmod(x, d_plus)
            specials = sends[0, list(balancer.special_ports)]
            expected_ceilings = min(3, excess)
            assert (specials == floor + 1).sum() == expected_ceilings
            assert sends.sum(axis=1)[0] == x
            assert sends.min() >= floor
            assert sends.max() <= floor + (1 if excess else 0)

    def test_name_reflects_s(self):
        assert RotorRouterStar().name == "rotor_router_star"
        assert "s=4" in RotorRouterStar(num_special=4).name


class TestClassMembership:
    def test_good_one_balancer_verdict(self, expander24):
        """Observation 3.2: ROTOR-ROUTER* is a good 1-balancer."""
        result, verdict, _, _ = run_monitored(
            expander24,
            RotorRouterStar(),
            point_mass(24, 24 * 64),
            rounds=80,
            s=1,
        )
        assert verdict.round_fair
        assert verdict.observed_delta <= 1
        assert verdict.self_preferring
        assert verdict.is_good_balancer

    def test_reaches_o_d(self, expander24):
        simulator = Simulator(
            expander24, RotorRouterStar(), point_mass(24, 24 * 64)
        )
        simulator.run(500)
        bound = (
            3 * expander24.total_degree + 4 * expander24.num_self_loops
        )
        assert simulator.discrepancy_history[-1] <= bound
