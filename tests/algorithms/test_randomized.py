"""Unit tests for the randomized baselines ([5] and [18])."""

import numpy as np

from repro.algorithms import RandomizedEdgeRounding, RandomizedExtraTokens
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.core.monitors import LoadBoundsMonitor

from tests.helpers import spread_loads


class TestRandomizedExtraTokens:
    def test_sends_everything(self, expander24):
        balancer = RandomizedExtraTokens(seed=1).bind(expander24)
        loads = spread_loads(24, seed=51)
        sends = balancer.sends(loads, 1)
        np.testing.assert_array_equal(sends.sum(axis=1), loads)

    def test_at_least_floor_everywhere(self, expander24):
        balancer = RandomizedExtraTokens(seed=2).bind(expander24)
        loads = spread_loads(24, seed=52)
        sends = balancer.sends(loads, 1)
        floor = (loads // expander24.total_degree)[:, None]
        assert (sends >= floor).all()

    def test_reproducible_after_reset(self, expander24):
        balancer = RandomizedExtraTokens(seed=3).bind(expander24)
        loads = spread_loads(24, seed=53)
        first = balancer.sends(loads, 1)
        balancer.reset()
        second = balancer.sends(loads, 1)
        np.testing.assert_array_equal(first, second)

    def test_original_edges_only_mode(self, expander24):
        balancer = RandomizedExtraTokens(
            seed=4, include_self_loops=False
        ).bind(expander24)
        d_plus = expander24.total_degree
        loads = np.full(24, d_plus + 2, dtype=np.int64)
        sends = balancer.sends(loads, 1)
        # extras land on original ports only
        assert (sends[:, expander24.degree:] == 1).all()

    def test_never_negative_on_run(self, expander24):
        monitor = LoadBoundsMonitor()
        simulator = Simulator(
            expander24,
            RandomizedExtraTokens(seed=5),
            point_mass(24, 24 * 64),
            monitors=(monitor,),
        )
        simulator.run(150)
        assert monitor.min_ever >= 0

    def test_balances(self, expander24):
        simulator = Simulator(
            expander24,
            RandomizedExtraTokens(seed=6),
            point_mass(24, 24 * 64),
        )
        result = simulator.run(300)
        assert result.final_discrepancy <= 4 * expander24.degree


class TestRandomizedEdgeRounding:
    def test_declared_negative_capable(self):
        assert RandomizedEdgeRounding(seed=1).allows_negative
        assert not RandomizedEdgeRounding(
            seed=1
        ).properties.negative_load_safe

    def test_sends_floor_or_ceil_per_edge(self, expander24):
        balancer = RandomizedEdgeRounding(seed=2).bind(expander24)
        loads = spread_loads(24, seed=61)
        sends = balancer.sends(loads, 1)
        d_plus = expander24.total_degree
        floor = (loads // d_plus)[:, None]
        originals = sends[:, : expander24.degree]
        assert (originals >= floor).all()
        assert (originals <= floor + 1).all()

    def test_negative_nodes_send_nothing(self, expander24):
        balancer = RandomizedEdgeRounding(seed=3).bind(expander24)
        loads = np.full(24, -5, dtype=np.int64)
        sends = balancer.sends(loads, 1)
        assert sends.sum() == 0

    def test_engine_allows_overdraw(self):
        """With tiny loads the demand can exceed supply: no crash."""
        from repro.graphs import families

        graph = families.random_regular(16, 4, seed=7)
        monitor = LoadBoundsMonitor()
        simulator = Simulator(
            graph,
            RandomizedEdgeRounding(seed=11),
            np.ones(16, dtype=np.int64),
            monitors=(monitor,),
        )
        result = simulator.run(60)
        assert result.final_loads.sum() == 16  # conserved even if negative

    def test_balances(self, expander24):
        simulator = Simulator(
            expander24,
            RandomizedEdgeRounding(seed=8),
            point_mass(24, 24 * 64),
        )
        result = simulator.run(300)
        assert result.final_discrepancy <= 4 * expander24.degree

    def test_reproducible_after_reset(self, expander24):
        balancer = RandomizedEdgeRounding(seed=9).bind(expander24)
        loads = spread_loads(24, seed=62)
        first = balancer.sends(loads, 1)
        balancer.reset()
        second = balancer.sends(loads, 1)
        np.testing.assert_array_equal(first, second)
