"""Unit tests for the algorithm registry."""

import pytest

from repro.algorithms.registry import (
    BASELINE_ALGORITHMS,
    PAPER_ALGORITHMS,
    REGISTRY,
    all_names,
    make,
)
from repro.core.balancer import Balancer


class TestRegistry:
    def test_every_name_constructs_a_balancer(self):
        for name in REGISTRY:
            balancer = make(name, seed=1)
            assert isinstance(balancer, Balancer)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown balancer"):
            make("gradient_descent")

    def test_all_names_cover_registry(self):
        assert set(all_names()) == set(REGISTRY)

    def test_paper_and_baselines_disjoint(self):
        assert not set(PAPER_ALGORITHMS) & set(BASELINE_ALGORITHMS)

    def test_seeds_ignored_by_deterministic(self, expander24):
        import numpy as np

        from repro.core.loads import point_mass

        a = make("rotor_router", seed=1).bind(expander24)
        b = make("rotor_router", seed=99).bind(expander24)
        loads = point_mass(24, 777)
        np.testing.assert_array_equal(
            a.sends(loads, 1), b.sends(loads, 1)
        )

    def test_seed_changes_randomized(self, expander24):
        import numpy as np

        from repro.core.loads import point_mass

        a = make("randomized_edge_rounding", seed=1).bind(expander24)
        b = make("randomized_edge_rounding", seed=2).bind(expander24)
        # 1003 mod d+ != 0, so the per-edge coins actually matter.
        loads = point_mass(24, 1003, node=3)
        assert not np.array_equal(a.sends(loads, 1), b.sends(loads, 1))

    def test_table1_rows_reference_known_names(self):
        from repro.analysis.theory import TABLE1_ROWS

        for row in TABLE1_ROWS:
            assert row.algorithm in REGISTRY
