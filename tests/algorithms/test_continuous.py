"""Unit tests for the continuous diffusion reference process."""

import numpy as np
import pytest

from repro.algorithms.continuous import (
    ContinuousDiffusion,
    continuous_discrepancy,
)
from repro.graphs import families


class TestStep:
    def test_matches_matrix_power(self):
        graph = families.cycle(8)
        process = ContinuousDiffusion(graph)
        x = np.zeros(8)
        x[0] = 80.0
        for _ in range(5):
            x = process.step(x)
        expected = np.linalg.matrix_power(
            graph.transition_matrix(), 5
        ) @ np.eye(8)[0] * 80.0
        np.testing.assert_allclose(x, expected, atol=1e-10)

    def test_conserves_mass(self):
        graph = families.petersen()
        process = ContinuousDiffusion(graph)
        x = np.arange(10, dtype=float)
        for _ in range(20):
            x = process.step(x)
        assert x.sum() == pytest.approx(45.0)

    def test_port_flows_shape_and_value(self):
        graph = families.cycle(4)
        process = ContinuousDiffusion(graph)
        flows = process.port_flows(np.array([8.0, 0, 0, 0]))
        assert flows.shape == (4, 4)
        assert flows[0, 0] == pytest.approx(2.0)


class TestConvergence:
    def test_discrepancy_monotone_for_lazy_chain(self):
        # With d° >= d the chain is positive: max is non-increasing.
        graph = families.random_regular(16, 4, seed=2)
        process = ContinuousDiffusion(graph)
        result = process.run(np.eye(16)[0] * 160, rounds=50)
        history = result.discrepancy_history
        assert all(b <= a + 1e-9 for a, b in zip(history, history[1:]))

    def test_converges_to_average(self):
        graph = families.complete(6)
        process = ContinuousDiffusion(graph)
        result = process.run(np.array([6.0, 0, 0, 0, 0, 0]), rounds=60)
        np.testing.assert_allclose(result.final_loads, 1.0, atol=1e-6)

    def test_run_until_discrepancy(self):
        graph = families.random_regular(16, 4, seed=4)
        process = ContinuousDiffusion(graph)
        result = process.run_until_discrepancy(
            np.eye(16)[0] * 1600, target=1.0, max_rounds=10_000
        )
        assert result.final_discrepancy <= 1.0
        assert result.rounds_executed < 10_000

    def test_balancing_time_scales_with_gap(self):
        fast = families.complete(16)
        slow = families.cycle(16)
        x = np.eye(16)[0] * 160
        t_fast = ContinuousDiffusion(fast).balancing_time(x)
        t_slow = ContinuousDiffusion(slow).balancing_time(x)
        assert t_slow > t_fast

    def test_history_disabled(self):
        graph = families.cycle(5)
        result = ContinuousDiffusion(graph).run(
            np.ones(5), rounds=3, record_history=False
        )
        assert result.discrepancy_history == []


def test_continuous_discrepancy_helper():
    assert continuous_discrepancy(np.array([1.5, 4.0])) == pytest.approx(2.5)


class TestStructuredMode:
    def test_structured_matches_dense(self):
        graph = families.random_regular(32, 4, seed=1)
        dense = ContinuousDiffusion(graph, mode="dense")
        structured = ContinuousDiffusion(graph, mode="structured")
        x = np.zeros(32)
        x[0] = 320.0
        y = x.copy()
        for _ in range(25):
            x = dense.step(x)
            y = structured.step(y)
        np.testing.assert_allclose(y, x, atol=1e-9)

    def test_structured_never_builds_matrix(self):
        graph = families.cycle(64)
        process = ContinuousDiffusion(graph, mode="structured")
        process.run(np.arange(64, dtype=float), rounds=10)
        assert process._matrix is None
        assert graph._transition_matrix is None

    def test_auto_mode_thresholds(self):
        small = ContinuousDiffusion(families.cycle(16))
        assert small.mode == "dense"
        big = ContinuousDiffusion(families.cycle(5000))
        assert big.mode == "structured"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            ContinuousDiffusion(families.cycle(8), mode="warp")
