"""Unit tests for SEND(⌊x/d+⌋)."""

import numpy as np

from repro.algorithms import SendFloor
from repro.core.engine import Simulator
from repro.core.loads import point_mass

from tests.helpers import run_monitored, spread_loads


class TestSends:
    def test_floor_on_every_original_edge(self, expander24):
        balancer = SendFloor().bind(expander24)
        loads = spread_loads(24, seed=1)
        sends = balancer.sends(loads, 1)
        d_plus = expander24.total_degree
        expected = loads // d_plus
        for port in range(expander24.degree):
            np.testing.assert_array_equal(sends[:, port], expected)

    def test_self_loops_get_at_least_floor(self, expander24):
        balancer = SendFloor().bind(expander24)
        loads = spread_loads(24, seed=2)
        sends = balancer.sends(loads, 1)
        floor = (loads // expander24.total_degree)[:, None]
        assert (sends[:, expander24.degree:] >= floor).all()

    def test_sends_everything_no_remainder(self, expander24):
        balancer = SendFloor().bind(expander24)
        loads = spread_loads(24, seed=3)
        sends = balancer.sends(loads, 1)
        np.testing.assert_array_equal(sends.sum(axis=1), loads)

    def test_zero_self_loops_keeps_excess(self):
        from repro.graphs import families

        graph = families.cycle(6, num_self_loops=0)
        balancer = SendFloor().bind(graph)
        loads = np.array([5, 0, 0, 0, 0, 0], dtype=np.int64)
        sends = balancer.sends(loads, 1)
        assert sends[0].sum() == 4  # 2 per edge, 1 stays as remainder

    def test_stateless_same_input_same_output(self, expander24):
        balancer = SendFloor().bind(expander24)
        loads = spread_loads(24, seed=4)
        first = balancer.sends(loads, 1)
        second = balancer.sends(loads, 99)
        np.testing.assert_array_equal(first, second)


class TestClassMembership:
    def test_cumulatively_zero_fair(self, expander24):
        """Observation 2.2: SEND(⌊x/d+⌋) is cumulatively 0-fair."""
        result, verdict, _, _ = run_monitored(
            expander24, SendFloor(), point_mass(24, 24 * 64), rounds=60
        )
        assert verdict.at_least_floor
        assert verdict.is_cumulatively_fair(0)

    def test_never_negative(self, expander24):
        _, _, _, bounds = run_monitored(
            expander24, SendFloor(), point_mass(24, 1000), rounds=60
        )
        assert bounds.min_ever >= 0


class TestConvergence:
    def test_balances_on_expander(self, expander24):
        simulator = Simulator(
            expander24, SendFloor(), point_mass(24, 24 * 64)
        )
        result = simulator.run(400)
        assert result.final_discrepancy <= 3 * expander24.degree

    def test_balanced_is_fixed_point_mod_dplus(self, expander24):
        loads = np.full(24, expander24.total_degree * 3, dtype=np.int64)
        simulator = Simulator(expander24, SendFloor(), loads)
        after = simulator.step()
        np.testing.assert_array_equal(after, loads)
