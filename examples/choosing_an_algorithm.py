"""Decision guide: which scheme for which topology?

Sweeps the implemented algorithms over three topologies with very
different expansion (expander / hypercube / cycle) and prints, for
each, the measured discrepancy after ``O(T)`` next to the paper's
predicted bound — Table 1 condensed into a topology-vs-algorithm
matrix.

Run with::

    python examples/choosing_an_algorithm.py
"""

from repro.algorithms import make
from repro.analysis import measure_after_t, render_table
from repro.analysis.theory import predicted_after_t
from repro.core import point_mass
from repro.graphs import cycle, eigenvalue_gap, hypercube, random_regular

ALGORITHMS = (
    "rotor_router",
    "rotor_router_star",
    "send_floor",
    "send_rounded",
    "arbitrary_rounding_fixed",
    "continuous_mimicking",
)


def main() -> None:
    topologies = {
        "expander": random_regular(128, 8, seed=3),
        "hypercube": hypercube(7),
        "cycle": cycle(48),
    }
    rows = []
    for topo_name, graph in topologies.items():
        gap = eigenvalue_gap(graph)
        row = {
            "topology": topo_name,
            "n": graph.num_nodes,
            "d": graph.degree,
            "mu": gap,
        }
        for name in ALGORITHMS:
            report = measure_after_t(
                graph,
                make(name, seed=1),
                point_mass(graph.num_nodes, 64 * graph.num_nodes),
                gap=gap,
            )
            bound = predicted_after_t(
                name, graph.num_nodes, graph.degree, gap,
                d_plus=graph.total_degree,
            )
            row[name] = f"{report.plateau_discrepancy}/{bound:.0f}"
        rows.append(row)
    print(
        render_table(
            rows,
            title="measured discrepancy after O(T) / paper bound",
        )
    )
    print()
    print("reading guide:")
    print(" - deterministic + stateless + safe: the SEND family")
    print(" - best observed discrepancy: rotor-router variants")
    print(" - O(d) guarantee needs a good s-balancer "
          "(send_rounded with d+>2d, rotor_router_star)")
    print(" - continuous_mimicking matches Theta(d) but needs global "
          "knowledge and can overdraw")


if __name__ == "__main__":
    main()
