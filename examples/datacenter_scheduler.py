"""Scenario: token-based job balancing across a datacenter fabric.

The paper's motivating setting: ``n`` processors joined by a d-regular
interconnect, jobs arrive as indivisible tokens at a handful of ingress
nodes, and every scheme may only ship whole jobs to direct neighbors.
We compare all implemented algorithms on the same burst and report

* discrepancy after the continuous balancing horizon ``T``,
* the per-node job-queue spread they leave behind,
* whether the scheme ever overdraws a queue (negative load).

Run with::

    python examples/datacenter_scheduler.py
"""

from repro.algorithms import all_names, make
from repro.analysis import measure_after_t, render_table
from repro.core import random_spikes
from repro.graphs import eigenvalue_gap, random_regular


def main() -> None:
    # A 256-server cluster wired as a random 8-regular expander.
    graph = random_regular(256, 8, seed=42)
    gap = eigenvalue_gap(graph)
    # A job burst: 12 ingress nodes each receive 2000 jobs on top of a
    # baseline queue of 50.
    workload = random_spikes(
        graph.num_nodes, num_spikes=12, spike_height=2000, seed=7, base=50
    )
    print(f"cluster: {graph.name}, mu = {gap:.4f}")
    print(
        f"burst: {workload.sum()} jobs, "
        f"initial discrepancy {int(workload.max() - workload.min())}"
    )

    rows = []
    for name in all_names():
        report = measure_after_t(
            graph, make(name, seed=1), workload.copy(), gap=gap
        )
        rows.append(
            {
                "algorithm": name,
                "rounds(T)": report.horizon,
                "final_discrepancy": report.plateau_discrepancy,
                "overdraws_queues": report.min_load_ever < 0,
            }
        )
    rows.sort(key=lambda row: row["final_discrepancy"])
    print()
    print(render_table(rows, title="job balance after the burst"))
    print()
    best = rows[0]
    print(
        f"winner: {best['algorithm']} "
        f"(discrepancy {best['final_discrepancy']} jobs)"
    )


if __name__ == "__main__":
    main()
