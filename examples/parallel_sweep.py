"""Scaling out: sharded parallel suites, result cache, crash resume.

A multi-scenario sweep is embarrassingly parallel — every scenario
(and every replica) is an independent, bit-reproducible run.  The
:mod:`repro.exec` subsystem exploits that:

1. the suite is split into deterministic shards;
2. shards fan out over a process pool (``workers=N``) and reassemble
   in order, bit-identical to a serial run;
3. each shard's records land in a content-addressed cache the moment
   it completes, so re-running the sweep (or resuming an interrupted
   one) recomputes only what is missing.

Run with::

    python examples/parallel_sweep.py

The same machinery is available from the CLI::

    repro-lb scenario sweep.json --workers 4        # fan out + cache
    repro-lb scenario sweep.json --resume           # finish a crashed run
    repro-lb run E2 E3 --workers 4                  # parallel drivers
"""

import tempfile

from repro.exec import ResultCache, run_suite
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    ProbeSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
    canonical_json,
)


def build_sweep() -> ScenarioSuite:
    """A 3-graphs x 3-algorithms grid, 4 replicas each = 36 runs."""
    graphs = [
        GraphSpec("cycle", {"n": 64}),
        GraphSpec("torus", {"side": 8, "dimensions": 2}),
        GraphSpec("random_regular", {"n": 64, "degree": 4, "seed": 1}),
    ]
    algorithms = [
        AlgorithmSpec(name, seed=1)
        for name in ("send_floor", "send_rounded", "rotor_router")
    ]
    return ScenarioSuite.cartesian(
        graphs=graphs,
        algorithms=algorithms,
        loads=LoadSpec("uniform_random", {"total_tokens": 4096, "seed": 9}),
        stop=StopRule.fixed(150),
        replicas=4,
        probes=(ProbeSpec("load_bounds"),),
        name="parallel-sweep",
    )


def main() -> None:
    suite = build_sweep()
    print(f"suite: {len(suite)} scenarios x 4 replicas")
    print(f"content hash: {suite.content_hash()[:16]}...")

    cache = ResultCache(tempfile.mkdtemp(prefix="repro-cache-"))

    # Cold run: every shard computed, fanned out over 2 workers,
    # written to the cache as it completes.
    cold = run_suite(suite, workers=2, cache=cache)
    print(f"cold run:  {cold.summary_line()}")

    # Warm run: nothing left to compute — pure cached replay.
    warm = run_suite(suite, workers=2, cache=cache)
    print(f"warm run:  {warm.summary_line()}")
    assert warm.computed == 0

    # Replay is bit-identical to the cold run, record for record.
    cold_records = [
        canonical_json(r.to_dict()) for o in cold.outcomes for r in o.records
    ]
    warm_records = [
        canonical_json(r.to_dict()) for o in warm.outcomes for r in o.records
    ]
    assert cold_records == warm_records
    print(f"replay bit-identical: {len(warm_records)} records match")

    # The usual driver-style consumption is unchanged.
    print("\nworst final discrepancy per scenario:")
    for outcome in cold.outcomes[:3]:
        label = outcome.scenario.label()
        worst = max(outcome.final_discrepancies)
        print(f"  {label:<45s} {worst}")
    print("  ...")


if __name__ == "__main__":
    main()
