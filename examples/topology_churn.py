"""Dynamic topologies: balancing while the fabric itself changes.

A :class:`repro.topology.TopologySchedule` emits per-round batches of
topology events — edge drops/adds, node leaves/joins — that the
engines apply at the top of the round by mutating their private
mutable graph in place.  The balancer repairs only the dirty rows, so
an active schedule costs O(events), not O(n) per round.

This example shows the three ways to attach one:

1. directly on a :class:`Simulator` (a scripted partition-and-heal);
2. declaratively via ``TopologySpec`` on a :class:`Scenario`
   (seeded ``edge_churn``, replica-offset like every other axis);
3. the steady-floor/recovery measurement E18 automates.

Run with::

    python examples/topology_churn.py

The same schedules are available from the CLI::

    repro-lb simulate --list-topologies
    repro-lb simulate rotor_router --family torus --side 8 \
        --topology 'edge_churn:{"rate": 0.05, "downtime": 5, "seed": 1}'
    repro-lb run E18
"""

import numpy as np

from repro.algorithms.registry import make
from repro.core.engine import Simulator
from repro.core.loads import point_mass
from repro.core.metrics import discrepancy
from repro.graphs import families
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    StopRule,
)
from repro.topology import ScriptedTopology, TopologySpec


def scripted_partition() -> None:
    """Sever a cycle into two halves mid-run, then heal it."""
    n = 32
    graph = families.cycle(n)
    # Cutting (0, 1) and (16, 17) splits the ring in two; all load
    # starts on node 0, so the far half is starved until the heal.
    events = [
        ["drop", 20, 0, 1],
        ["drop", 20, 16, 17],
        ["add", 80, 0, 1],
        ["add", 80, 16, 17],
    ]
    simulator = Simulator(
        graph,
        make("send_floor"),
        point_mass(n, 32 * n),
        topology=ScriptedTopology(events),
    )
    simulator.run(160)
    history = simulator.discrepancy_history
    print("scripted partition on cycle(32), send_floor:")
    print(f"  discrepancy before the cut  (t=19):  {history[18]}")
    print(f"  discrepancy while partitioned (t=79): {history[78]}")
    print(f"  discrepancy after healing   (t=160): {history[-1]}")
    # The caller's graph object is never touched — the engine churns
    # a private mutable copy.
    assert graph.adjacency[0, 0] == 1


def seeded_churn_scenario() -> None:
    """The declarative form: TopologySpec as a scenario axis."""
    scenario = Scenario(
        graph=GraphSpec("torus", {"side": 8, "dimensions": 2}),
        algorithm=AlgorithmSpec("rotor_router", seed=1),
        loads=LoadSpec("uniform_random", {"total_tokens": 2048, "seed": 9}),
        stop=StopRule.fixed(200),
        topology=TopologySpec(
            "edge_churn", {"rate": 0.05, "downtime": 5, "seed": 3}
        ),
        replicas=3,  # replica r runs the schedule at seed 3 + r
    )
    outcome = scenario.run()
    print("\nedge_churn(rate=0.05) on torus(8x8), rotor_router, 3 replicas:")
    for replica, result in enumerate(outcome.results):
        summary = result.record.summary
        print(
            f"  replica {replica}: final discrepancy "
            f"{discrepancy(result.final_loads)}, "
            f"{summary['edges_severed']} edges severed over "
            f"{summary['topology_rounds']} churn rounds"
        )
        assert result.final_loads.sum() == 2048  # churn conserves tokens


def churn_vs_plateau() -> None:
    """Churn is not simply noise: it can *break* deterministic plateaus.

    SEND and the rotor-router converge to nonzero plateaus fixed by
    parity and rotor state; a moving fabric keeps re-randomizing the
    port layout, which often shakes the process below its own static
    plateau.  (The reverse also happens — on an already-balanced
    fabric, sustained churn imposes a floor above zero.  E18 sweeps
    both effects across churn rates x algorithms x families.)
    """
    n = 64
    graph = families.random_regular(n, 4, seed=2)
    loads = point_mass(n, 16 * n)
    print("\nexpander_rewire(swaps=2) on random_regular(64, 4):")
    for algorithm in ("send_floor", "rotor_router"):
        tails = {}
        for spec in (
            None,
            TopologySpec("expander_rewire", {"swaps": 2, "seed": 5}),
        ):
            simulator = Simulator(
                graph,
                make(algorithm),
                loads,
                topology=spec.build() if spec else None,
            )
            simulator.run(300)
            tail = simulator.discrepancy_history[-50:]
            tails["static" if spec is None else "rewired"] = np.mean(tail)
        print(
            f"  {algorithm:<13s} tail-mean discrepancy: "
            f"static {tails['static']:.2f} -> "
            f"rewired {tails['rewired']:.2f}"
        )


if __name__ == "__main__":
    scripted_partition()
    seeded_churn_scenario()
    churn_vs_plateau()
