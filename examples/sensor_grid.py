"""Scenario: work sharing on a sensor / compute grid (2-d torus).

Tori are the paper's canonical *bad expanders*: ``μ = Θ(1/side²)`` makes
the generic bound ``O(d log n/μ)`` useless, which is exactly where
Theorem 2.3(ii)'s ``O(d√n)`` and Theorem 3.3's ``O(d)`` matter.  We run
a good s-balancer (SEND([x/d+]) with d+ = 3d) next to a plain
cumulatively fair one and track the φ-potential collapsing
(Lemma 3.5's monotone drop).

Run with::

    python examples/sensor_grid.py
"""

from repro.algorithms import SendFloor, SendRounded
from repro.core import PotentialMonitor, Simulator, bimodal
from repro.graphs import eigenvalue_gap, torus


def run_one(graph, balancer, workload, rounds, s):
    average = workload.sum() / graph.num_nodes
    c_center = int(average // graph.total_degree)
    # Potentials are pure functions of the load vector, so the monitor
    # rides as a loads-only probe — the SEND schemes keep their
    # structured (matrix-free) engine while phi is tracked.
    monitor = PotentialMonitor([c_center + 1], s=s)
    simulator = Simulator(graph, balancer, workload, probes=(monitor,))
    result = simulator.run(rounds)
    return result, monitor, c_center + 1


def main() -> None:
    side = 12
    graph = torus(side, 2, num_self_loops=8)  # d = 4, d° = 8, d+ = 12
    gap = eigenvalue_gap(graph)
    print(f"grid: {graph.name}, d+ = {graph.total_degree}, mu = {gap:.5f}")

    # Half the grid saturated (sensor sweep), half idle.
    workload = bimodal(graph.num_nodes, high=600, low=0)
    rounds = 800

    for balancer, s in ((SendRounded(), 2), (SendFloor(), 1)):
        result, monitor, c = run_one(
            graph, balancer, workload.copy(), rounds, s
        )
        history = monitor.phi_history[c]
        print(f"\n{balancer.name}:")
        print(f"  final discrepancy: {result.final_discrepancy}")
        print(
            f"  phi(c={c}) trajectory: "
            f"{history[0]} -> {history[rounds // 4]} -> "
            f"{history[rounds // 2]} -> {history[-1]}"
        )
        print(f"  phi monotone (Lemma 3.5): {monitor.phi_is_monotone(c)}")

    bound = 3 * graph.total_degree + 4 * graph.num_self_loops
    print(
        f"\nTheorem 3.3 bound for the good s-balancer: "
        f"(2δ+1)d+ + 4d° = {bound}"
    )


if __name__ == "__main__":
    main()
