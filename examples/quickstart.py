"""Quickstart: balance a point-mass workload with the rotor-router.

Part 1 uses the classic imperative API (one Simulator); part 2 shows
the declarative Scenario API — the recommended front door — running an
8-replica ensemble as one vectorized batch and a small cartesian sweep.

Run with::

    python examples/quickstart.py
"""

from repro.algorithms import RotorRouter
from repro.core import DiscrepancyRecorder, Simulator, point_mass
from repro.graphs import eigenvalue_gap, random_regular
from repro.scenarios import (
    AlgorithmSpec,
    GraphSpec,
    LoadSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
)


def imperative_api() -> None:
    # 1. Build a 4-regular expander on 64 nodes.  Each node implicitly
    #    carries d° = d self-loops (the paper's standard lazy setting).
    graph = random_regular(64, 4, seed=1)
    print(f"graph: {graph.name}")
    print(f"eigenvalue gap mu = {eigenvalue_gap(graph):.4f}")

    # 2. Drop 6400 tokens on node 0 — initial discrepancy K = 6400.
    initial = point_mass(graph.num_nodes, 6400)

    # 3. Run the deterministic rotor-router for 200 synchronous rounds.
    #    DiscrepancyRecorder is a loads-only probe, so the simulator
    #    stays on the matrix-free structured engine while observing.
    recorder = DiscrepancyRecorder()
    simulator = Simulator(
        graph, RotorRouter(), initial, probes=(recorder,)
    )
    assert simulator.engine == "structured"
    result = simulator.run(200)

    # 4. Inspect the trajectory.
    print(f"initial discrepancy: {result.initial_discrepancy}")
    print(f"final discrepancy:   {result.final_discrepancy}")
    checkpoints = [0, 5, 10, 25, 50, 100, 200]
    for t in checkpoints:
        print(f"  round {t:>4}: discrepancy {recorder.history[t]}")
    assert result.final_discrepancy <= 3 * graph.degree


def scenario_api() -> None:
    # The same experiment, declaratively: 8 replicas with independent
    # random workloads, executed as one stacked (8, 64) batch.
    scenario = Scenario(
        graph=GraphSpec("random_regular", {"n": 64, "degree": 4, "seed": 1}),
        algorithm=AlgorithmSpec("rotor_router"),
        loads=LoadSpec("uniform_random", {"total_tokens": 6400, "seed": 7}),
        stop=StopRule.fixed(200),
        replicas=8,
    )
    outcome = scenario.run()
    print(f"\nscenario: {scenario.label()} ({outcome.executor} executor)")
    print(f"final discrepancies: {outcome.final_discrepancies}")

    # Scenarios serialize to plain dicts/JSON (repro-lb scenario file.json).
    assert Scenario.from_dict(scenario.to_dict()) == scenario

    # Cartesian sweeps: every algorithm on every graph size, one call.
    suite = ScenarioSuite.cartesian(
        graphs=[GraphSpec("cycle", {"n": n}) for n in (9, 17)],
        algorithms=[
            AlgorithmSpec("send_floor"),
            AlgorithmSpec("rotor_router"),
        ],
        loads=LoadSpec("point_mass", {"tokens": 500}),
        stop=StopRule.discrepancy(target=8, max_rounds=2000),
    )
    print(f"sweep of {len(suite)} scenarios:")
    for result in suite.run():
        summary = result.replica_summary()
        print(
            f"  {result.scenario.label():>34}: reached discrepancy "
            f"{summary['final_discrepancy']} after "
            f"{summary['rounds']} rounds"
        )


def main() -> None:
    imperative_api()
    scenario_api()


if __name__ == "__main__":
    main()
