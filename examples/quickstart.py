"""Quickstart: balance a point-mass workload with the rotor-router.

Run with::

    python examples/quickstart.py
"""

from repro.algorithms import RotorRouter
from repro.core import DiscrepancyRecorder, Simulator, point_mass
from repro.graphs import eigenvalue_gap, random_regular


def main() -> None:
    # 1. Build a 4-regular expander on 64 nodes.  Each node implicitly
    #    carries d° = d self-loops (the paper's standard lazy setting).
    graph = random_regular(64, 4, seed=1)
    print(f"graph: {graph.name}")
    print(f"eigenvalue gap mu = {eigenvalue_gap(graph):.4f}")

    # 2. Drop 6400 tokens on node 0 — initial discrepancy K = 6400.
    initial = point_mass(graph.num_nodes, 6400)

    # 3. Run the deterministic rotor-router for 200 synchronous rounds.
    recorder = DiscrepancyRecorder()
    simulator = Simulator(
        graph, RotorRouter(), initial, monitors=(recorder,)
    )
    result = simulator.run(200)

    # 4. Inspect the trajectory.
    print(f"initial discrepancy: {result.initial_discrepancy}")
    print(f"final discrepancy:   {result.final_discrepancy}")
    checkpoints = [0, 5, 10, 25, 50, 100, 200]
    for t in checkpoints:
        print(f"  round {t:>4}: discrepancy {recorder.history[t]}")
    assert result.final_discrepancy <= 3 * graph.degree


if __name__ == "__main__":
    main()
