"""Scenario: load balancing on an irregular peer-to-peer overlay.

Real overlays are not regular: node degrees follow whoever joined
first.  The paper's machinery extends to this case via the classic
padding reduction (Section 1.1: "our results can be extended to
non-regular graphs"): pad every node to ``d_max`` with structural
self-loops, after which the walk is doubly stochastic and every
balancer in this library runs unchanged.

Run with::

    python examples/irregular_overlay.py
"""

import networkx as nx

from repro.algorithms import make
from repro.analysis import render_table
from repro.core import Simulator, point_mass
from repro.graphs import eigenvalue_gap, from_networkx_irregular


def main() -> None:
    # A preferential-attachment overlay: hubs and leaves.
    overlay = nx.barabasi_albert_graph(100, 3, seed=11)
    graph = from_networkx_irregular(overlay, name="p2p-overlay")
    info = graph.describe()
    print(
        f"overlay: n={info['n']}, degrees "
        f"{info['min_degree']}..{info['d_max']}, padded d+={info['d_plus']}"
    )
    print(f"spectral gap mu = {eigenvalue_gap(graph):.4f}")

    # 6400 work units appear at one hub.
    initial = point_mass(graph.num_nodes, 6400)
    rows = []
    for name in (
        "rotor_router",
        "rotor_router_star",
        "send_floor",
        "send_rounded",
        "continuous_mimicking",
    ):
        simulator = Simulator(graph, make(name, seed=1), initial.copy())
        result = simulator.run(300)
        rows.append(
            {
                "algorithm": name,
                "final_discrepancy": result.final_discrepancy,
                "max_queue": int(result.final_loads.max()),
                "conserved": int(result.final_loads.sum()) == 6400,
            }
        )
    print()
    print(render_table(rows, title="after 300 rounds"))
    average = 6400 / graph.num_nodes
    print(f"\nperfect balance would be {average:.0f} units per node;")
    print("padding makes the stationary distribution uniform, so the")
    print("balancers equalize absolute load even though degrees differ.")


if __name__ == "__main__":
    main()
