"""Gallery: the three Section 4 adversarial constructions, live.

Each lower bound is instantiated and *run on the actual engine* so you
can watch the pathology: a round-fair scheme frozen at Ω(d·diam), a
stateless scheme frozen at Θ(d), and a rotor-router without self-loops
ping-ponging between two states at Ω(d·φ(G)) forever.

Run with::

    python examples/lower_bound_gallery.py
"""

import numpy as np

from repro.algorithms import make
from repro.core import Simulator
from repro.graphs import cycle, petersen, torus
from repro.lower_bounds import (
    build_rotor_alternating_instance,
    build_stateless_instance,
    build_steady_state_instance,
    is_fixed_point,
)


def theorem_4_1() -> None:
    print("=== Theorem 4.1: round-fair but not cumulatively fair ===")
    graph = torus(8, 2, num_self_loops=0)
    instance = build_steady_state_instance(graph)
    simulator = Simulator(
        graph, instance.balancer, instance.initial_loads
    )
    simulator.run(100)
    frozen = np.array_equal(simulator.loads, instance.initial_loads)
    print(f"graph: {graph.name}, diameter {instance.diameter}")
    print(f"loads frozen after 100 rounds: {frozen}")
    print(
        f"discrepancy {instance.actual_discrepancy} "
        f">= d*(diam-1) = {instance.predicted_discrepancy}"
    )


def theorem_4_2() -> None:
    print("\n=== Theorem 4.2: stateless algorithms stuck at Theta(d) ===")
    instance = build_stateless_instance(60, 14)
    print(
        f"graph: {instance.graph.name}, clique size "
        f"{len(instance.clique)}, stuck discrepancy "
        f"{instance.predicted_discrepancy}"
    )
    for name in ("send_floor", "send_rounded", "arbitrary_rounding_fixed"):
        stuck = is_fixed_point(instance, make(name), rounds=20)
        print(f"  {name:28s} fixed point: {stuck}")
    escaped = not is_fixed_point(instance, make("rotor_router"), rounds=20)
    print(f"  {'rotor_router (stateful!)':28s} escapes:     {escaped}")


def theorem_4_3() -> None:
    print("\n=== Theorem 4.3: rotor-router without self-loops ===")
    for graph in (cycle(25, num_self_loops=0), petersen(num_self_loops=0)):
        instance = build_rotor_alternating_instance(graph)
        simulator = Simulator(
            graph, instance.balancer, instance.initial_loads
        )
        simulator.run(10)
        history = simulator.discrepancy_history
        print(f"graph: {graph.name}, phi = {instance.phi}")
        print(f"  discrepancy trajectory: {history[:6]} ... (period 2)")
        print(
            f"  never below d*phi = {instance.predicted_discrepancy}: "
            f"{min(history) >= instance.predicted_discrepancy}"
        )


def main() -> None:
    theorem_4_1()
    theorem_4_2()
    theorem_4_3()


if __name__ == "__main__":
    main()
