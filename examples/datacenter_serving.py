"""Datacenter scenarios: fabrics + realistic traffic, end to end.

The datacenter pack has two halves:

* ``repro.graphs`` fabrics — ``fat_tree(k)`` and
  ``leaf_spine(leaves, spines, hosts_per_leaf)`` — padded irregular
  graphs whose nodes carry a *tier* label (host / edge / agg / core),
  so probes and workload generators can treat the host tier specially;
* ``repro.traffic`` generators — Poisson arrivals, heavy-tailed Pareto
  flow sizes, diurnal modulation, rotating hotspots, and correlated
  bursts — all ordinary injectors, so they serialize into Scenario
  JSON, shard across workers, and replay from the result cache.

This script balances a leaf-spine pod under each traffic model and
prints where the discrepancy settles plus the p99 node load, then runs
the same comparison on a fat-tree via the E16 driver.

Run with::

    python examples/datacenter_serving.py

The same fabrics are available from the CLI::

    repro-lb simulate --list-families
    repro-lb simulate send_floor --family fat_tree --n 64 \\
        --probe tier_loads --inject 'poisson_arrivals:{"rate": 0.5}'
"""

from repro.experiments import (
    DatacenterServingConfig,
    run_datacenter_serving,
)
from repro.scenarios import (
    AlgorithmSpec,
    DynamicsSpec,
    GraphSpec,
    LoadSpec,
    ProbeSpec,
    Scenario,
    ScenarioSuite,
    StopRule,
)
from repro.traffic import TRAFFIC_INJECTORS


def traffic_suite() -> ScenarioSuite:
    """One leaf-spine pod under each of the five traffic models."""
    fabric = GraphSpec(
        "leaf_spine", {"leaves": 6, "spines": 3, "hosts_per_leaf": 4}
    )
    params = {
        "poisson_arrivals": {"rate": 0.5, "seed": 1},
        "pareto_flows": {"rate": 2.0, "alpha": 1.5, "seed": 1},
        "diurnal": {"rate": 1.0, "period": 40, "amplitude": 0.8, "seed": 1},
        "hotspot_shift": {"rate": 16, "hotspots": 3, "shift_every": 25,
                          "seed": 1},
        "correlated_burst": {"tokens": 64, "nodes": 4, "probability": 0.25,
                             "seed": 1},
    }
    return ScenarioSuite(
        tuple(
            Scenario(
                graph=fabric,
                algorithm=AlgorithmSpec("send_floor", seed=1),
                loads=LoadSpec("balanced", {"per_node": 8}),
                stop=StopRule.fixed(200),
                replicas=2,
                probes=(
                    ProbeSpec("tier_loads", {"percentile": 99.0}),
                    ProbeSpec("discrepancy"),
                ),
                dynamics=DynamicsSpec(model, params[model]),
            )
            for model in TRAFFIC_INJECTORS
        ),
        name="leaf-spine-traffic",
    )


def main() -> None:
    print("== leaf_spine(l=6, s=3, h=4) under five traffic models ==")
    for model, outcome in zip(TRAFFIC_INJECTORS, traffic_suite().run()):
        summary = outcome.records[0].summary
        print(
            f"{model:>17}: "
            f"p99 load {summary['p99_load']:6.1f}   "
            f"peak {summary['peak_load']:4d}   "
            f"host tier mean {summary['tier_host_mean_load']:.1f}"
        )

    print()
    print("== E16: both fabrics, offered-load sweep ==")
    result = run_datacenter_serving(
        DatacenterServingConfig(
            rounds=120,
            tail_window=30,
            offered_loads=(1.0, 8.0),
            algorithms=("send_floor",),
        )
    )
    print(result.to_text())


if __name__ == "__main__":
    main()
